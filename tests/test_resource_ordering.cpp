// Unit tests for the resource-ordering baseline.
#include "deadlock/resource_ordering.h"

#include <gtest/gtest.h>

#include <map>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(ResourceOrderingTest, PaperExampleCounts) {
  auto ex = testing::MakePaperExample();
  const auto report = ApplyResourceOrdering(ex.design);
  // Hop classes per link: L1 used at hops {0 (F1,F4), 1 (F3)} -> 2
  // channels; L2 at {1} -> 1; L3 at {0 (F2), 2 (F1)} -> 2; L4 at
  // {0 (F3), 1 (F2)} -> 2. Extra VCs = (2-1)+(1-1)+(2-1)+(2-1) = 3.
  EXPECT_EQ(report.vcs_added, 3u);
  EXPECT_EQ(report.total_channels, 7u);
  EXPECT_EQ(report.max_class, 3u);  // F1's route has length 3
  ex.design.Validate();
}

TEST(ResourceOrderingTest, ResultIsDeadlockFree) {
  auto ex = testing::MakePaperExample();
  ApplyResourceOrdering(ex.design);
  EXPECT_TRUE(IsDeadlockFree(ex.design));
}

TEST(ResourceOrderingTest, ClassesIncreaseAlongEveryRoute) {
  // After ordering, each channel serves exactly one hop class and every
  // flow traverses strictly increasing classes. Recover the class of
  // each channel from the final routes and check both invariants.
  auto ex = testing::MakePaperExample();
  ApplyResourceOrdering(ex.design);
  std::map<std::uint32_t, std::size_t> channel_class;
  for (std::size_t fi = 0; fi < ex.design.traffic.FlowCount(); ++fi) {
    const Route& route = ex.design.routes.RouteOf(FlowId(fi));
    for (std::size_t h = 0; h < route.size(); ++h) {
      auto [it, inserted] = channel_class.emplace(route[h].value(), h);
      // One class per channel across all flows.
      EXPECT_EQ(it->second, h) << "channel serves two classes";
      (void)inserted;
    }
  }
  for (std::size_t fi = 0; fi < ex.design.traffic.FlowCount(); ++fi) {
    const Route& route = ex.design.routes.RouteOf(FlowId(fi));
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      EXPECT_LT(channel_class[route[h].value()],
                channel_class[route[h + 1].value()]);
    }
  }
  EXPECT_TRUE(IsDeadlockFree(ex.design));
}

TEST(ResourceOrderingTest, PhysicalPathPreserved) {
  auto ex = testing::MakePaperExample();
  auto links_of = [&](FlowId f) {
    std::vector<LinkId> links;
    for (ChannelId c : ex.design.routes.RouteOf(f)) {
      links.push_back(ex.design.topology.ChannelAt(c).link);
    }
    return links;
  };
  const auto b1 = links_of(ex.f1);
  const auto b2 = links_of(ex.f2);
  ApplyResourceOrdering(ex.design);
  EXPECT_EQ(links_of(ex.f1), b1);
  EXPECT_EQ(links_of(ex.f2), b2);
}

TEST(ResourceOrderingTest, AcyclicOnRingsAndRandomDesigns) {
  for (std::size_t n : {4u, 6u, 9u}) {
    auto d = testing::MakeRingDesign(n, 3);
    ApplyResourceOrdering(d);
    EXPECT_TRUE(IsDeadlockFree(d)) << "ring " << n;
    d.Validate();
  }
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto d = testing::MakeRandomDesign(seed);
    ApplyResourceOrdering(d);
    EXPECT_TRUE(IsDeadlockFree(d)) << "seed " << seed;
    d.Validate();
  }
}

TEST(ResourceOrderingTest, SharedPrefixSharesChannels) {
  // Two flows over the same 2-hop path at the same hop positions need no
  // extra VCs at all.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const LinkId bc = d.topology.AddLink(b, c);
  const CoreId ca = d.traffic.AddCore(), cc = d.traffic.AddCore();
  d.attachment = {a, c};
  const Route route = {*d.topology.FindChannel(ab, 0),
                       *d.topology.FindChannel(bc, 0)};
  const FlowId f1 = d.traffic.AddFlow(ca, cc, 1.0);
  const FlowId f2 = d.traffic.AddFlow(ca, cc, 2.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f1, route);
  d.routes.SetRoute(f2, route);
  d.Validate();
  const auto report = ApplyResourceOrdering(d);
  EXPECT_EQ(report.vcs_added, 0u);
}

TEST(ResourceOrderingTest, OffsetUsePaysOneVcPerExtraClass) {
  // A link used at hop 0 by one flow and hop 1 by another needs 2 VCs.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch(),
                 c = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const LinkId bc = d.topology.AddLink(b, c);
  const CoreId x = d.traffic.AddCore(), y = d.traffic.AddCore(),
               z = d.traffic.AddCore();
  d.attachment = {a, b, c};
  const FlowId f1 = d.traffic.AddFlow(x, z, 1.0);  // a->b->c: bc at hop 1
  const FlowId f2 = d.traffic.AddFlow(y, z, 1.0);  // b->c:    bc at hop 0
  d.routes.Resize(2);
  d.routes.SetRoute(f1, {*d.topology.FindChannel(ab, 0),
                         *d.topology.FindChannel(bc, 0)});
  d.routes.SetRoute(f2, {*d.topology.FindChannel(bc, 0)});
  d.Validate();
  const auto report = ApplyResourceOrdering(d);
  EXPECT_EQ(report.vcs_added, 1u);
  EXPECT_EQ(d.topology.VcCount(bc), 2u);
  EXPECT_EQ(d.topology.VcCount(ab), 1u);
  // f2 keeps class 0 = VC 0; f1 uses class 1 = VC 1 on bc.
  EXPECT_EQ(d.topology.ChannelAt(d.routes.RouteOf(f2)[0]).vc, 0u);
  EXPECT_EQ(d.topology.ChannelAt(d.routes.RouteOf(f1)[1]).vc, 1u);
}

TEST(ResourceOrderingTest, CostGrowsWithRouteLength) {
  // The same ring with longer worms needs more classes: overhead grows.
  auto short_d = testing::MakeRingDesign(8, 2);
  auto long_d = testing::MakeRingDesign(8, 5);
  const auto short_report = ApplyResourceOrdering(short_d);
  const auto long_report = ApplyResourceOrdering(long_d);
  EXPECT_GT(long_report.vcs_added, short_report.vcs_added);
  EXPECT_EQ(long_report.max_class, 5u);
}

}  // namespace
}  // namespace nocdr
