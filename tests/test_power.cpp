// Unit tests for the power/area model.
#include "power/model.h"

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(PowerModelTest, PositiveForPaperExample) {
  auto ex = testing::MakePaperExample();
  const auto pa = EstimatePowerArea(ex.design);
  EXPECT_GT(pa.switch_area_um2, 0.0);
  EXPECT_GT(pa.dynamic_mw, 0.0);
  EXPECT_GT(pa.leakage_mw, 0.0);
  EXPECT_GT(pa.clock_mw, 0.0);
  EXPECT_GT(pa.TotalPowerMw(), 0.0);
  EXPECT_EQ(pa.switches.size(), 4u);
}

TEST(PowerModelTest, ZeroTrafficZeroDynamic) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  const auto pa = EstimatePowerArea(d);
  EXPECT_DOUBLE_EQ(pa.dynamic_mw, 0.0);
  EXPECT_GT(pa.switch_area_um2, 0.0);  // idle hardware still has area
}

TEST(PowerModelTest, AddingVcsGrowsAreaLeakageClockOnly) {
  auto ex = testing::MakePaperExample();
  const auto before = EstimatePowerArea(ex.design);
  ex.design.topology.AddVirtualChannel(ex.l1);
  ex.design.topology.AddVirtualChannel(ex.l2);
  const auto after = EstimatePowerArea(ex.design);
  EXPECT_GT(after.switch_area_um2, before.switch_area_um2);
  EXPECT_GT(after.leakage_mw, before.leakage_mw);
  EXPECT_GT(after.clock_mw, before.clock_mw);
  EXPECT_DOUBLE_EQ(after.dynamic_mw, before.dynamic_mw);
}

TEST(PowerModelTest, DynamicScalesWithBandwidth) {
  auto light = testing::MakePaperExample();
  const auto pa_light = EstimatePowerArea(light.design);
  // Same design, all flow bandwidths doubled.
  NocDesign heavy;
  auto src = testing::MakePaperExample();
  heavy.name = src.design.name;
  heavy.topology = src.design.topology;
  heavy.attachment = src.design.attachment;
  for (std::size_t c = 0; c < src.design.traffic.CoreCount(); ++c) {
    heavy.traffic.AddCore(src.design.traffic.CoreName(CoreId(c)));
  }
  for (std::size_t f = 0; f < src.design.traffic.FlowCount(); ++f) {
    const Flow& flow = src.design.traffic.FlowAt(FlowId(f));
    heavy.traffic.AddFlow(flow.src, flow.dst, 2.0 * flow.bandwidth_mbps);
  }
  heavy.routes = src.design.routes;
  heavy.Validate();
  const auto pa_heavy = EstimatePowerArea(heavy);
  EXPECT_NEAR(pa_heavy.dynamic_mw, 2.0 * pa_light.dynamic_mw, 1e-9);
  EXPECT_DOUBLE_EQ(pa_heavy.switch_area_um2, pa_light.switch_area_um2);
}

TEST(PowerModelTest, LongerRoutesCostMoreDynamicPower) {
  auto short_ring = testing::MakeRingDesign(8, 2);
  auto long_ring = testing::MakeRingDesign(8, 5);
  const auto pa_short = EstimatePowerArea(short_ring);
  const auto pa_long = EstimatePowerArea(long_ring);
  EXPECT_GT(pa_long.dynamic_mw, pa_short.dynamic_mw);
}

TEST(PowerModelTest, RemovalCheaperThanResourceOrderingOnDenseDesign) {
  // The headline comparison: on a deadlock-prone design our algorithm
  // should end with fewer VCs, hence less area and less total power.
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  auto removal_design = SynthesizeDesign(b.traffic, b.name, 14);
  auto ordering_design = removal_design;
  RemoveDeadlocks(removal_design);
  ApplyResourceOrdering(ordering_design);
  ASSERT_LE(removal_design.topology.ExtraVcCount(),
            ordering_design.topology.ExtraVcCount());
  const auto pa_removal = EstimatePowerArea(removal_design);
  const auto pa_ordering = EstimatePowerArea(ordering_design);
  EXPECT_LE(pa_removal.switch_area_um2, pa_ordering.switch_area_um2);
  EXPECT_LE(pa_removal.TotalPowerMw(), pa_ordering.TotalPowerMw());
}

TEST(PowerModelTest, CustomParamsRespected) {
  auto ex = testing::MakePaperExample();
  PowerModelParams params;
  params.leakage_mw_per_um2 *= 10.0;
  const auto base = EstimatePowerArea(ex.design);
  const auto leaky = EstimatePowerArea(ex.design, params);
  EXPECT_NEAR(leaky.leakage_mw, 10.0 * base.leakage_mw, 1e-9);
  EXPECT_DOUBLE_EQ(leaky.switch_area_um2, base.switch_area_um2);
}

TEST(PowerModelTest, PerSwitchFootprintsSumToTotals) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD35Bot);
  const auto design = SynthesizeDesign(b.traffic, b.name, 9);
  const auto pa = EstimatePowerArea(design);
  double area = 0.0, leak = 0.0, clock = 0.0;
  for (const auto& sw : pa.switches) {
    area += sw.area_um2;
    leak += sw.leakage_mw;
    clock += sw.clock_mw;
  }
  EXPECT_NEAR(area, pa.switch_area_um2, 1e-6);
  EXPECT_NEAR(leak, pa.leakage_mw, 1e-9);
  EXPECT_NEAR(clock, pa.clock_mw, 1e-9);
}

TEST(PowerModelTest, PortCountsIncludeLocalCores) {
  auto ex = testing::MakePaperExample();
  const auto pa = EstimatePowerArea(ex.design);
  // SW1 hosts src1, dst2 and src4 (3 cores) plus 1 in-link, 1 out-link.
  const auto& sw1 = pa.switches[0];
  EXPECT_EQ(sw1.in_ports, 4u);
  EXPECT_EQ(sw1.out_ports, 4u);
  // Buffered VCs: only link L4's single VC (NI queues are not counted).
  EXPECT_EQ(sw1.buffer_vcs, 1u);
}

}  // namespace
}  // namespace nocdr
