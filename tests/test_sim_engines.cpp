// Three-way engine-equivalence suite: the discrete-event engine
// (SimEngine::kEvent) must be bit-identical — full SimResult, per-flow
// delivery counts, deadlock verdicts and the detected wait cycle, not
// just aggregates — to both the worklist engine and the full-scan
// reference, on every corpus design, traffic pattern and seed. Also
// holds the EventQueue's deterministic tie-break to its contract with a
// seeded insertion-order fuzz test, and drives the event engine through
// the adversarial corners (zero flows, single-flit worms, saturated
// injection, simultaneous same-cycle events, a cycle-0 deadlock).
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "deadlock/removal.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/transition.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "valid/campaign.h"

namespace nocdr {
namespace {

// ---------------------------------------------------------------------
// Full-result comparison. Every deterministic field of SimResult,
// including the deadlock wait cycle and the per-channel / per-flow
// breakdowns — "bit-identical" means nothing is exempt.
// ---------------------------------------------------------------------

void ExpectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.deadlock_cycle, b.deadlock_cycle);
  EXPECT_EQ(a.stuck_flits, b.stuck_flits);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.max_packet_latency, b.max_packet_latency);
  EXPECT_EQ(a.channel_flits, b.channel_flits);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].packets_delivered, b.flows[f].packets_delivered);
    EXPECT_DOUBLE_EQ(a.flows[f].avg_latency, b.flows[f].avg_latency);
    EXPECT_EQ(a.flows[f].max_latency, b.flows[f].max_latency);
  }
}

/// Runs \p config on \p design under all three engines and asserts the
/// results are pairwise identical (full-scan is the reference).
void ExpectEnginesAgree(const NocDesign& design, SimConfig config,
                        const std::string& context) {
  config.engine = SimEngine::kFullScan;
  const SimResult reference = SimulateWorkload(design, config);
  for (const SimEngine engine :
       {SimEngine::kWorklist, SimEngine::kEvent}) {
    config.engine = engine;
    const SimResult candidate = SimulateWorkload(design, config);
    SCOPED_TRACE(context + " engine=" + EngineName(engine));
    ExpectIdentical(reference, candidate);
  }
}

// ---------------------------------------------------------------------
// Workload shapes. Deliberately spans the regimes where the engines'
// bookkeeping diverges most: dense deadlock pressure, sparse Bernoulli
// traffic with long idle gaps (the event engine's fast path),
// injection-first arbitration, and single-slot buffers.
// ---------------------------------------------------------------------

std::vector<std::pair<std::string, SimConfig>> EngineConfigs() {
  std::vector<std::pair<std::string, SimConfig>> configs;
  SimConfig deadlocky;
  deadlocky.traffic.mode = InjectionMode::kFixedCount;
  deadlocky.traffic.packets_per_flow = 4;
  deadlocky.traffic.packet_length = 8;
  deadlocky.buffer_depth = 1;
  deadlocky.max_cycles = 50000;
  deadlocky.stall_threshold = 500;
  configs.emplace_back("deadlocky", deadlocky);

  SimConfig sparse;
  sparse.traffic.mode = InjectionMode::kBernoulli;
  sparse.traffic.reference_injection_rate = 0.002;
  sparse.traffic.packet_length = 4;
  sparse.max_cycles = 6000;
  sparse.stall_threshold = 500;
  configs.emplace_back("sparse_bernoulli", sparse);

  SimConfig inject_first;
  inject_first.traffic.mode = InjectionMode::kFixedCount;
  inject_first.traffic.packets_per_flow = 6;
  inject_first.traffic.packet_length = 5;
  inject_first.inject_first = true;
  inject_first.buffer_depth = 2;
  inject_first.max_cycles = 50000;
  inject_first.stall_threshold = 500;
  configs.emplace_back("inject_first", inject_first);
  return configs;
}

// ---------------------------------------------------------------------
// Corpus property test: every design source the validation campaign
// draws from (synthesized SoCs, mesh/torus/ring DOR, fat-tree), seeds x
// treatments x traffic patterns. The untreated generated families are
// the adversarial half — torus/ring DOR designs really deadlock.
// ---------------------------------------------------------------------

TEST(SimEnginesTest, CorpusThreeWayEquivalence) {
  valid::DesignEnvelope envelope;
  envelope.min_cores = 12;
  envelope.max_cores = 30;
  const auto configs = EngineConfigs();
  for (const valid::DesignSource source : valid::AllSources()) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      NocDesign design = valid::GenerateTrialDesign(source, seed, envelope);
      NocDesign treated = design;
      RemoveDeadlocks(treated);
      for (const auto& [config_name, config] : configs) {
        const std::string context = valid::SourceName(source) + "/seed" +
                                    std::to_string(seed) + "/" +
                                    config_name;
        ExpectEnginesAgree(design, config, context + "/untreated");
        ExpectEnginesAgree(treated, config, context + "/treated");
      }
    }
  }
}

TEST(SimEnginesTest, HandcraftedDesignsThreeWayEquivalence) {
  std::vector<std::pair<std::string, NocDesign>> designs;
  designs.emplace_back("paper", testing::MakePaperExample().design);
  designs.emplace_back("ring4", testing::MakeRingDesign(4, 2));
  designs.emplace_back("ring8", testing::MakeRingDesign(8, 3));
  for (const std::uint64_t seed : {3ull, 4ull, 5ull}) {
    designs.emplace_back("random" + std::to_string(seed),
                         testing::MakeRandomDesign(seed, 8, 12, 24));
  }
  const auto configs = EngineConfigs();
  for (const auto& [name, design] : designs) {
    for (const auto& [config_name, config] : configs) {
      ExpectEnginesAgree(design, config, name + "/" + config_name);
    }
  }
}

TEST(SimEnginesTest, EventEngineIsDeterministicAcrossRuns) {
  const NocDesign design = testing::MakeRandomDesign(7, 8, 12, 24);
  SimConfig config;
  config.engine = SimEngine::kEvent;
  config.traffic.mode = InjectionMode::kBernoulli;
  config.traffic.reference_injection_rate = 0.01;
  config.max_cycles = 8000;
  const SimResult r1 = SimulateWorkload(design, config);
  const SimResult r2 = SimulateWorkload(design, config);
  ExpectIdentical(r1, r2);
}

// ---------------------------------------------------------------------
// Transitions: the event engine must track drain windows and mid-flight
// kills cycle-for-cycle. Same detour scenario as tests/test_transition,
// compared across all three engines on the full TransitionResult.
// ---------------------------------------------------------------------

struct DetourFixture {
  NocDesign design;        // routes already detoured: flow 0 on {c}
  RouteSet pre_routes;     // original routes: flow 0 on {a, b}
  std::vector<char> dead;  // channel of link b
};

DetourFixture MakeDetourFixture() {
  DetourFixture fx;
  NocDesign& d = fx.design;
  d.name = "detour_line";
  const SwitchId s0 = d.topology.AddSwitch("S0");
  const SwitchId s1 = d.topology.AddSwitch("S1");
  const SwitchId s2 = d.topology.AddSwitch("S2");
  const LinkId a = d.topology.AddLink(s0, s1);
  const LinkId b = d.topology.AddLink(s1, s2);
  const LinkId c = d.topology.AddLink(s0, s2);
  const ChannelId ca = *d.topology.FindChannel(a, 0);
  const ChannelId cb = *d.topology.FindChannel(b, 0);
  const ChannelId cc = *d.topology.FindChannel(c, 0);

  const CoreId src0 = d.traffic.AddCore("src0");
  const CoreId dst0 = d.traffic.AddCore("dst0");
  const CoreId src1 = d.traffic.AddCore("src1");
  const CoreId dst1 = d.traffic.AddCore("dst1");
  d.attachment = {s0, s2, s0, s1};
  const FlowId f0 = d.traffic.AddFlow(src0, dst0, 100.0);
  const FlowId f1 = d.traffic.AddFlow(src1, dst1, 100.0);

  d.routes.Resize(2);
  fx.pre_routes.Resize(2);
  fx.pre_routes.SetRoute(f0, {ca, cb});
  fx.pre_routes.SetRoute(f1, {ca});
  d.routes.SetRoute(f0, {cc});
  d.routes.SetRoute(f1, {ca});
  d.Validate();

  fx.dead.assign(d.topology.ChannelCount(), 0);
  fx.dead[cb.value()] = 1;
  return fx;
}

TEST(SimEnginesTest, TransitionThreeWayEquivalence) {
  const DetourFixture fx = MakeDetourFixture();
  for (const TransitionPolicy policy :
       {TransitionPolicy::kDrainAndRestart, TransitionPolicy::kMidFlight}) {
    for (const std::uint64_t transition_cycle : {0ull, 10ull, 40000ull}) {
      TransitionConfig config;
      config.sim.buffer_depth = 1;
      config.sim.max_cycles = 50000;
      config.sim.stall_threshold = 1000;
      config.sim.traffic.mode = InjectionMode::kFixedCount;
      config.sim.traffic.packets_per_flow = 8;
      config.sim.traffic.packet_length = 6;
      config.policy = policy;
      config.transition_cycle = transition_cycle;

      config.sim.engine = SimEngine::kFullScan;
      const TransitionResult reference =
          SimulateTransition(fx.design, fx.pre_routes, fx.dead, config);
      for (const SimEngine engine :
           {SimEngine::kWorklist, SimEngine::kEvent}) {
        config.sim.engine = engine;
        const TransitionResult candidate =
            SimulateTransition(fx.design, fx.pre_routes, fx.dead, config);
        SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
                     " cycle=" + std::to_string(transition_cycle) +
                     " engine=" + EngineName(engine));
        ExpectIdentical(reference.sim, candidate.sim);
        EXPECT_EQ(reference.packets_dropped, candidate.packets_dropped);
        EXPECT_EQ(reference.drain_cycles, candidate.drain_cycles);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Adversarial edge cases.
// ---------------------------------------------------------------------

TEST(SimEnginesEdgeTest, ZeroFlowDesignTerminatesImmediately) {
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  d.topology.AddLink(a, b);
  d.routes.Resize(0);
  d.Validate();
  SimConfig config;
  config.traffic.packets_per_flow = 5;
  ExpectEnginesAgree(d, config, "zero_flow");
  config.engine = SimEngine::kEvent;
  const SimResult r = SimulateWorkload(d, config);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.packets_offered, 0u);
  EXPECT_LE(r.cycles, 2u);
}

TEST(SimEnginesEdgeTest, SingleFlitWorms) {
  // packet_length == 1: every head is its own tail, so channel ownership
  // is claimed and released within one hop. Exercises the worm-completion
  // wake on every single delivery.
  const auto designs = {testing::MakeRingDesign(4, 2),
                        testing::MakeRandomDesign(11, 6, 10, 16)};
  std::size_t i = 0;
  for (const NocDesign& d : designs) {
    SimConfig config;
    config.traffic.packets_per_flow = 10;
    config.traffic.packet_length = 1;
    config.buffer_depth = 1;
    config.max_cycles = 50000;
    config.stall_threshold = 500;
    ExpectEnginesAgree(d, config, "single_flit/" + std::to_string(i++));
  }
}

TEST(SimEnginesEdgeTest, FullySaturatedInjection) {
  // Bernoulli at probability 1.0: every flow offers a packet every
  // cycle, so the event engine's idle-skip fast path never fires and it
  // degenerates to the worklist engine plus heap overhead — results must
  // still be identical, including any deadlock.
  for (const bool treated : {false, true}) {
    NocDesign d = testing::MakeRingDesign(6, 2);
    if (treated) {
      RemoveDeadlocks(d);
    }
    SimConfig config;
    config.traffic.mode = InjectionMode::kBernoulli;
    config.traffic.reference_injection_rate = 1.0;
    config.traffic.reference_bandwidth = 50.0;  // ring flows' bandwidth
    config.traffic.packet_length = 4;
    config.buffer_depth = 2;
    config.max_cycles = 3000;
    config.stall_threshold = 500;
    ExpectEnginesAgree(d, config,
                       treated ? "saturated/treated" : "saturated/raw");
  }
}

TEST(SimEnginesEdgeTest, SimultaneousSameCycleEventsTieBreak) {
  // Eight flows, one shared link, every packet ready on cycle 0: eight
  // kFlitInjection events with equal cycles land in the heap at once and
  // only the (kind, id) tie-break orders them. The arbitration outcome —
  // and therefore delivery order and per-flow latency — must match the
  // cycle-accurate engines exactly, twice in a row.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch(), b = d.topology.AddSwitch();
  const LinkId ab = d.topology.AddLink(a, b);
  const ChannelId ch = *d.topology.FindChannel(ab, 0);
  const std::size_t kFlows = 8;
  d.routes.Resize(0);
  for (std::size_t i = 0; i < kFlows; ++i) {
    const CoreId src = d.traffic.AddCore();
    const CoreId dst = d.traffic.AddCore();
    d.attachment.push_back(a);
    d.attachment.push_back(b);
    d.traffic.AddFlow(src, dst, 100.0);
  }
  d.routes.Resize(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    d.routes.SetRoute(FlowId(i), {ch});
  }
  d.Validate();
  SimConfig config;
  config.traffic.packets_per_flow = 3;
  config.traffic.packet_length = 4;
  config.buffer_depth = 1;
  ExpectEnginesAgree(d, config, "simultaneous_ready");
  config.engine = SimEngine::kEvent;
  const SimResult r1 = SimulateWorkload(d, config);
  const SimResult r2 = SimulateWorkload(d, config);
  ExpectIdentical(r1, r2);
}

TEST(SimEnginesEdgeTest, DeadlockOnCycleZero) {
  // Two switches with links in both directions and two flows routed
  // A->B->A and B->A->B. With one-slot buffers both heads inject on
  // cycle 0, fill each other's next channel, and form a circular hard
  // wait that the cycle-0 periodic check catches before a single cycle
  // elapses. All engines must report deadlocked at cycles == 0 with the
  // same wait cycle.
  NocDesign d;
  const SwitchId a = d.topology.AddSwitch("A"), b = d.topology.AddSwitch("B");
  const LinkId lab = d.topology.AddLink(a, b);
  const LinkId lba = d.topology.AddLink(b, a);
  const ChannelId cab = *d.topology.FindChannel(lab, 0);
  const ChannelId cba = *d.topology.FindChannel(lba, 0);
  const CoreId a_src = d.traffic.AddCore(), a_dst = d.traffic.AddCore();
  const CoreId b_src = d.traffic.AddCore(), b_dst = d.traffic.AddCore();
  d.attachment = {a, a, b, b};
  const FlowId f0 = d.traffic.AddFlow(a_src, a_dst, 100.0);
  const FlowId f1 = d.traffic.AddFlow(b_src, b_dst, 100.0);
  d.routes.Resize(2);
  d.routes.SetRoute(f0, {cab, cba});
  d.routes.SetRoute(f1, {cba, cab});
  d.Validate();

  SimConfig config;
  config.traffic.packets_per_flow = 1;
  config.traffic.packet_length = 4;
  config.buffer_depth = 1;
  ExpectEnginesAgree(d, config, "cycle0_deadlock");
  for (const SimEngine engine : AllEngines()) {
    config.engine = engine;
    const SimResult r = SimulateWorkload(d, config);
    SCOPED_TRACE("engine=" + EngineName(engine));
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_FALSE(r.deadlock_cycle.empty());
  }
}

// ---------------------------------------------------------------------
// EventQueue unit + fuzz coverage: the (cycle, kind, id) total order
// makes the pop sequence a pure function of the event multiset. Shuffle
// insertion orders under heavy key collisions and assert invariance.
// ---------------------------------------------------------------------

std::vector<SimEvent> DrainAll(EventQueue& queue) {
  std::vector<SimEvent> popped;
  while (!queue.Empty()) {
    popped.push_back(queue.PopTop());
  }
  return popped;
}

TEST(EventQueueTest, PopsInTotalOrder) {
  EventQueue queue;
  queue.Push({5, EventKind::kCreditReturn, 0});
  queue.Push({5, EventKind::kFlitInjection, 9});
  queue.Push({5, EventKind::kFlitInjection, 2});
  queue.Push({1, EventKind::kArbitrationWake, 0});
  queue.Push({5, EventKind::kWormCompletion, 0});
  const std::vector<SimEvent> expected = {
      {1, EventKind::kArbitrationWake, 0},
      {5, EventKind::kFlitInjection, 2},
      {5, EventKind::kFlitInjection, 9},
      {5, EventKind::kCreditReturn, 0},
      {5, EventKind::kWormCompletion, 0},
  };
  EXPECT_EQ(DrainAll(queue), expected);
}

TEST(EventQueueTest, TopAndPopOnEmptyThrow) {
  EventQueue queue;
  EXPECT_THROW(static_cast<void>(queue.Top()), InvalidModelError);
  EXPECT_THROW(queue.PopTop(), InvalidModelError);
  queue.Push({1, EventKind::kFlitInjection, 0});
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
  EXPECT_THROW(queue.PopTop(), InvalidModelError);
}

TEST(EventQueueFuzzTest, PopSequenceIsInsertionOrderInvariant) {
  // Small key ranges force many exact collisions (equal cycle AND kind,
  // equal full keys): the regime where a broken tie-break would show.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    std::vector<SimEvent> events;
    const std::size_t count = 20 + rng.NextBelow(200);
    for (std::size_t i = 0; i < count; ++i) {
      events.push_back(
          {rng.NextBelow(8),
           static_cast<EventKind>(rng.NextBelow(4)),
           static_cast<std::uint32_t>(rng.NextBelow(5))});
    }
    std::vector<SimEvent> expected = events;
    std::sort(expected.begin(), expected.end(), EventBefore);

    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      rng.Shuffle(events);
      EventQueue queue;
      for (const SimEvent& event : events) {
        queue.Push(event);
      }
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shuffle=" + std::to_string(shuffle));
      EXPECT_EQ(DrainAll(queue), expected);
    }
  }
}

TEST(EventQueueFuzzTest, InterleavedPushPopMatchesReferenceExtraction) {
  // Mixed push/pop traffic (the engine's actual usage pattern) against a
  // naive min-extraction reference.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    EventQueue queue;
    std::vector<SimEvent> reference;
    for (std::size_t op = 0; op < 400; ++op) {
      if (reference.empty() || rng.NextBool(0.6)) {
        const SimEvent event = {
            rng.NextBelow(16),
            static_cast<EventKind>(rng.NextBelow(4)),
            static_cast<std::uint32_t>(rng.NextBelow(6))};
        queue.Push(event);
        reference.push_back(event);
      } else {
        const auto min_it =
            std::min_element(reference.begin(), reference.end(),
                             [](const SimEvent& a, const SimEvent& b) {
                               return EventBefore(a, b);
                             });
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " op=" + std::to_string(op));
        ASSERT_EQ(queue.Top(), *min_it);
        ASSERT_EQ(queue.PopTop(), *min_it);
        reference.erase(min_it);
      }
      ASSERT_EQ(queue.Size(), reference.size());
    }
    std::vector<SimEvent> expected = reference;
    std::sort(expected.begin(), expected.end(), EventBefore);
    EXPECT_EQ(DrainAll(queue), expected);
  }
}

TEST(SimEnginesTest, EngineNamesRoundTrip) {
  for (const SimEngine engine : AllEngines()) {
    const auto parsed = ParseEngine(EngineName(engine));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, engine);
  }
  EXPECT_FALSE(ParseEngine("quantum").has_value());
  EXPECT_EQ(AllEngines().size(), 3u);
  EXPECT_EQ(AllEngines().front(), SimEngine::kFullScan);
}

}  // namespace
}  // namespace nocdr
