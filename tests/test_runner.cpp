// SweepRunner and ThreadPool: the determinism contract (N threads ==
// 1 thread, byte-identical deterministic fields), per-job seeding, and
// error capture.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  runner::SweepConfig unused;  // silence unused-include pedantry
  (void)unused;
  ThreadPool pool(4);
  EXPECT_EQ(pool.ThreadCount(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(JobSeedTest, DistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i) {
    seeds.insert(runner::JobSeed(1, i));
  }
  EXPECT_EQ(seeds.size(), 256u);
  EXPECT_EQ(runner::JobSeed(1, 0), runner::JobSeed(1, 0));
  EXPECT_NE(runner::JobSeed(1, 0), runner::JobSeed(2, 0));
}

std::vector<runner::SweepJob> MakeJobs() {
  std::vector<runner::SweepJob> jobs;
  for (auto [n, span] : {std::pair<std::size_t, std::size_t>{4, 2},
                         {6, 2},
                         {6, 3},
                         {8, 3},
                         {10, 4}}) {
    for (const auto& [engine, label] :
         {std::pair{RemovalEngine::kIncremental, "incremental"},
          std::pair{RemovalEngine::kRebuild, "rebuild"}}) {
      runner::SweepJob job;
      job.design = "ring" + std::to_string(n) + "x" + std::to_string(span);
      job.variant = label;
      job.options.engine = engine;
      job.factory = [n = n, span = span](Rng&) {
        return testing::MakeRingDesign(n, span);
      };
      jobs.push_back(std::move(job));
    }
  }
  // One randomized design family exercising the per-job Rng.
  for (std::size_t i = 0; i < 4; ++i) {
    runner::SweepJob job;
    job.design = "random" + std::to_string(i);
    job.variant = "incremental";
    job.factory = [](Rng& rng) {
      return testing::MakeRandomDesign(rng.Next(), 8, 10, 18);
    };
    jobs.push_back(std::move(job));
  }
  // And one resource-ordering arm.
  runner::SweepJob ordering;
  ordering.design = "ring6x3";
  ordering.variant = "ordering";
  ordering.method = runner::SweepMethod::kResourceOrdering;
  ordering.factory = [](Rng&) { return testing::MakeRingDesign(6, 3); };
  jobs.push_back(std::move(ordering));
  return jobs;
}

TEST(SweepRunnerTest, ThreadCountDoesNotChangeResults) {
  const auto jobs = MakeJobs();
  const auto serial = runner::SweepRunner({.threads = 1}).Run(jobs);
  const auto three = runner::SweepRunner({.threads = 3}).Run(jobs);
  const auto eight = runner::SweepRunner({.threads = 8}).Run(jobs);

  ASSERT_EQ(serial.size(), jobs.size());
  const std::uint64_t digest = runner::Digest(serial);
  EXPECT_EQ(digest, runner::Digest(three));
  EXPECT_EQ(digest, runner::Digest(eight));

  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].job_index, i);
    EXPECT_EQ(serial[i].design, jobs[i].design);
    EXPECT_EQ(serial[i].variant, jobs[i].variant);
    EXPECT_EQ(serial[i].vcs_added, eight[i].vcs_added);
    EXPECT_EQ(serial[i].iterations, eight[i].iterations);
    EXPECT_EQ(serial[i].seed, eight[i].seed);
    EXPECT_TRUE(serial[i].error.empty()) << serial[i].error;
    EXPECT_TRUE(serial[i].deadlock_free);
  }
}

TEST(SweepRunnerTest, EnginesAgreeWithinTheSweep) {
  const auto jobs = MakeJobs();
  const auto rows = runner::SweepRunner({.threads = 2}).Run(jobs);
  // Jobs come in (incremental, rebuild) pairs for the ring designs.
  for (std::size_t i = 0; i + 1 < 10; i += 2) {
    EXPECT_EQ(rows[i].vcs_added, rows[i + 1].vcs_added)
        << rows[i].design;
    EXPECT_EQ(rows[i].iterations, rows[i + 1].iterations)
        << rows[i].design;
  }
}

TEST(SweepRunnerTest, DigestReactsToOutcomeChanges) {
  const auto jobs = MakeJobs();
  auto rows = runner::SweepRunner({.threads = 1}).Run(jobs);
  const std::uint64_t digest = runner::Digest(rows);
  rows[0].vcs_added += 1;
  EXPECT_NE(digest, runner::Digest(rows));
}

TEST(SweepRunnerTest, DigestIgnoresTimings) {
  const auto jobs = MakeJobs();
  auto rows = runner::SweepRunner({.threads = 1}).Run(jobs);
  const std::uint64_t digest = runner::Digest(rows);
  rows[0].run_ms += 1234.5;
  rows[1].factory_ms += 9.0;
  EXPECT_EQ(digest, runner::Digest(rows));
}

TEST(SweepRunnerTest, FactoryExceptionIsCapturedPerJob) {
  std::vector<runner::SweepJob> jobs = MakeJobs();
  runner::SweepJob poison;
  poison.design = "poison";
  poison.variant = "throws";
  poison.factory = [](Rng&) -> NocDesign {
    throw InvalidModelError("synthetic failure");
  };
  jobs.insert(jobs.begin() + 1, std::move(poison));

  const auto rows = runner::SweepRunner({.threads = 4}).Run(jobs);
  ASSERT_EQ(rows.size(), jobs.size());
  EXPECT_EQ(rows[1].error, "synthetic failure");
  EXPECT_TRUE(rows[0].error.empty());
  EXPECT_TRUE(rows[2].error.empty());
  EXPECT_TRUE(rows[2].deadlock_free);
}

TEST(SweepRunnerTest, ThrowingJobDoesNotPoisonSiblingsAcrossThreadCounts) {
  // A mid-batch throwing job must fail only its own row, and the digest
  // must stay byte-identical for any thread count even in that scenario.
  std::vector<runner::SweepJob> jobs = MakeJobs();
  runner::SweepJob poison;
  poison.design = "poison";
  poison.variant = "throws";
  poison.factory = [](Rng&) -> NocDesign {
    throw AlgorithmLimitError("deliberate mid-sweep failure");
  };
  const std::size_t poisoned = jobs.size() / 2;
  jobs.insert(jobs.begin() + static_cast<std::ptrdiff_t>(poisoned), poison);

  const auto one = runner::SweepRunner({.threads = 1}).Run(jobs);
  const auto two = runner::SweepRunner({.threads = 2}).Run(jobs);
  const auto eight = runner::SweepRunner({.threads = 8}).Run(jobs);

  ASSERT_EQ(one.size(), jobs.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    if (i == poisoned) {
      EXPECT_EQ(one[i].error, "deliberate mid-sweep failure");
      EXPECT_FALSE(one[i].deadlock_free);
    } else {
      EXPECT_TRUE(one[i].error.empty()) << "row " << i << ": "
                                        << one[i].error;
      EXPECT_TRUE(one[i].deadlock_free) << "row " << i;
    }
  }
  const std::uint64_t digest = runner::Digest(one);
  EXPECT_EQ(digest, runner::Digest(two));
  EXPECT_EQ(digest, runner::Digest(eight));
}

TEST(SweepRunnerTest, RowToJsonRoundsTrip) {
  runner::SweepRow row;
  row.design = "d";
  row.variant = "v";
  row.seed = 7;
  row.vcs_added = 3;
  const std::string dump = runner::RowToJson(row).Dump();
  EXPECT_NE(dump.find("\"design\":\"d\""), std::string::npos);
  EXPECT_NE(dump.find("\"vcs_added\":3"), std::string::npos);
  EXPECT_EQ(dump.find("\"error\""), std::string::npos);
}

}  // namespace
}  // namespace nocdr
