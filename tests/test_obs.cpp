// Tests for the observability layer (src/obs): histogram bucket
// boundaries (protocol surface, pinned), cross-thread merge
// determinism, registry snapshots, trace byte-determinism, the span
// schema checker and the v2 metrics JSONL round trip through the real
// codec.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/json.h"

namespace nocdr::obs {
namespace {

// ---------------------------------------------------------- histograms

TEST(HistogramBuckets, BoundariesArePinned) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds
  // [2^(i-1), 2^i - 1]; the last bucket absorbs the tail. These
  // boundaries are part of the metrics protocol surface
  // (docs/OBSERVABILITY.md) — changing them breaks remote consumers.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            kHistogramBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramBuckets, IndexAndUpperBoundAgreeOnEveryEdge) {
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    const std::uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i) << "upper bound of " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper + 1), i + 1)
        << "first value past bucket " << i;
  }
}

TEST(HistogramSnapshotTest, QuantileWalksCumulativeCounts) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) {
    histogram.Record(10);  // bucket 4, upper bound 15
  }
  for (int i = 0; i < 10; ++i) {
    histogram.Record(1000);  // bucket 10, upper bound 1023
  }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.Quantile(0.5), 15u);
  EXPECT_EQ(snapshot.Quantile(0.90), 15u);
  EXPECT_EQ(snapshot.Quantile(0.99), 1023u);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.99), 0u);
}

TEST(HistogramSnapshotTest, MergeIsOrderIndependent) {
  // Record the same multiset of samples (a) serially into one
  // histogram and (b) partitioned across threads, then merge the
  // per-thread snapshots in two different orders. All three must be
  // identical — the property that makes per-shard metrics reporting
  // sound.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  const auto sample = [](std::size_t t, std::size_t i) {
    return static_cast<std::uint64_t>((t * 7919 + i * 104729) % 100000);
  };

  Histogram serial;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      serial.Record(sample(t, i));
    }
  }

  std::vector<Histogram> shards(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shards, t, sample] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        shards[t].Record(sample(t, i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  HistogramSnapshot forward;
  for (std::size_t t = 0; t < kThreads; ++t) {
    forward.Merge(shards[t].Snapshot());
  }
  HistogramSnapshot backward;
  for (std::size_t t = kThreads; t-- > 0;) {
    backward.Merge(shards[t].Snapshot());
  }
  EXPECT_EQ(forward, serial.Snapshot());
  EXPECT_EQ(forward, backward);
}

TEST(HistogramSnapshotTest, ConcurrentRecordsIntoOneHistogramAllLand) {
  Histogram shared;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        shared.Record(i % 257);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const HistogramSnapshot snapshot = shared.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : snapshot.buckets) {
    bucket_total += bucket;
  }
  EXPECT_EQ(bucket_total, snapshot.count);
}

// ------------------------------------------------------------ registry

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndResetKeepsReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("b.count");
  registry.GetCounter("a.count");
  registry.GetGauge("depth").Set(-3);
  registry.GetHistogram("lat_us").Record(5);
  counter.Add(2);
  EXPECT_EQ(&counter, &registry.GetCounter("b.count"));

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");
  EXPECT_EQ(snapshot.counters[1].first, "b.count");
  EXPECT_EQ(snapshot.counters[1].second, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -3);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);

  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);  // same instrument, zeroed
  counter.Add(1);
  EXPECT_EQ(registry.Snapshot().counters[1].second, 1u);
}

// -------------------------------------------------------------- traces

/// Builds one deterministic trace into \p sink under id \p trace_id.
void BuildTrace(TraceSink& sink, const std::string& trace_id) {
  ScopedTrace trace(&sink, trace_id, "request");
  trace.Attr("status", std::string("ok"));
  {
    ScopedSpan child("materialize");
    child.Attr("channels", std::uint64_t{16});
  }
  ScopedSpan certify("certify");
}

std::string Render(const TraceSink& sink) {
  std::ostringstream out;
  sink.WriteTo(out);
  return out.str();
}

TEST(TraceTest, SameSpansSameBytesRegardlessOfFinishOrder) {
  // The sink sorts by trace id at write time, so the bytes are a pure
  // function of the *set* of finished traces — the property the CI
  // trace-schema job pins across client thread counts.
  TraceSink forward;
  BuildTrace(forward, "q0");
  BuildTrace(forward, "q1");
  BuildTrace(forward, "q2");
  TraceSink backward;
  BuildTrace(backward, "q2");
  BuildTrace(backward, "q0");
  BuildTrace(backward, "q1");
  EXPECT_EQ(forward.TraceCount(), 3u);
  const std::string bytes = Render(forward);
  EXPECT_EQ(bytes, Render(backward));
  EXPECT_FALSE(bytes.empty());

  // Every line survives the schema checker.
  std::istringstream lines(bytes);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NO_THROW(ParseTraceHeaderLine(line));
  std::size_t spans = 0;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW(ParseSpanLine(line)) << line;
    ++spans;
  }
  EXPECT_EQ(spans, forward.SpanCount());
}

TEST(TraceTest, LogicalClockAssignsDeterministicIdsAndTicks) {
  TraceSink sink;
  BuildTrace(sink, "q7");
  const std::string bytes = Render(sink);
  std::istringstream lines(bytes);
  std::string line;
  std::getline(lines, line);  // header
  std::vector<ParsedSpan> spans;
  while (std::getline(lines, line)) {
    spans.push_back(ParseSpanLine(line));
  }
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].string_attrs.at("status"), "ok");
  EXPECT_EQ(spans[1].name, "materialize");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].uint_attrs.at("channels"), 16u);
  EXPECT_EQ(spans[2].name, "certify");
  EXPECT_EQ(spans[2].parent, 0);
  // Children are contained in the root's tick interval.
  EXPECT_LE(spans[0].start, spans[1].start);
  EXPECT_LE(spans[1].end, spans[2].start);
  EXPECT_LE(spans[2].end, spans[0].end);
}

TEST(TraceTest, ScopedSpanWithoutCurrentTraceIsANoOp) {
  ScopedSpan orphan("nothing");
  EXPECT_FALSE(orphan.active());
  ScopedTrace inactive(nullptr, "q0", "request");
  EXPECT_FALSE(inactive.active());
  TraceSink sink;
  ScopedTrace unsampled(&sink, "", "request");  // empty id = untraced
  EXPECT_FALSE(unsampled.active());
  EXPECT_EQ(sink.TraceCount(), 0u);
}

TEST(StageTimerTest, EmitsOneSpanPerTouchedStageWithBusyAndCalls) {
  TraceSink sink;
  {
    ScopedTrace trace(&sink, "k0", "compute");
    StageTimer stages("test_obs_stage", {"search", "apply"});
    { StageTimer::Section section(stages, 0); }
    { StageTimer::Section section(stages, 0); }
    { StageTimer::Section section(stages, 1); }
    stages.Count(1, "vcs_added", 3);
    // Stage timers record metrics regardless of tracing.
  }
  std::istringstream lines(Render(sink));
  std::string line;
  std::getline(lines, line);  // header
  std::vector<ParsedSpan> spans;
  while (std::getline(lines, line)) {
    spans.push_back(ParseSpanLine(line));
  }
  ASSERT_EQ(spans.size(), 3u);  // root + two touched stages
  EXPECT_EQ(spans[1].name, "search");
  EXPECT_EQ(spans[1].uint_attrs.at("calls"), 2u);
  EXPECT_TRUE(spans[1].uint_attrs.count("busy"));
  EXPECT_EQ(spans[2].name, "apply");
  EXPECT_EQ(spans[2].uint_attrs.at("calls"), 1u);
  EXPECT_EQ(spans[2].uint_attrs.at("vcs_added"), 3u);
}

// ------------------------------------------------------- span schema

TEST(ParseSpanLineTest, RejectsSchemaViolations) {
  const std::string good =
      R"({"trace":"q0","span":0,"parent":-1,"name":"request",)"
      R"("start":0,"end":3})";
  EXPECT_NO_THROW(ParseSpanLine(good));
  // Missing name.
  EXPECT_THROW(
      ParseSpanLine(
          R"({"trace":"q0","span":0,"parent":-1,"start":0,"end":3})"),
      InvalidModelError);
  // Empty trace id.
  EXPECT_THROW(
      ParseSpanLine(
          R"({"trace":"","span":0,"parent":-1,"name":"r","start":0,"end":3})"),
      InvalidModelError);
  // start > end.
  EXPECT_THROW(ParseSpanLine(R"({"trace":"q0","span":0,"parent":-1,)"
                             R"("name":"r","start":4,"end":3})"),
               InvalidModelError);
  // Root must have parent -1; non-roots an earlier span id.
  EXPECT_THROW(
      ParseSpanLine(
          R"({"trace":"q0","span":0,"parent":0,"name":"r","start":0,"end":3})"),
      InvalidModelError);
  EXPECT_THROW(
      ParseSpanLine(
          R"({"trace":"q0","span":1,"parent":2,"name":"r","start":0,"end":3})"),
      InvalidModelError);
  // Attribute values must be strings or unsigned integers.
  EXPECT_THROW(ParseSpanLine(R"({"trace":"q0","span":0,"parent":-1,)"
                             R"("name":"r","start":0,"end":3,"x":1.5})"),
               InvalidModelError);
  EXPECT_THROW(ParseSpanLine(R"({"trace":"q0","span":0,"parent":-1,)"
                             R"("name":"r","start":0,"end":3,"x":[1]})"),
               InvalidModelError);
}

TEST(ParseTraceHeaderLineTest, ValidatesVersionAndClock) {
  EXPECT_TRUE(IsTraceHeaderLine(R"({"trace_schema":1,"clock":"logical"})"));
  EXPECT_FALSE(IsTraceHeaderLine(
      R"({"trace":"q0","span":0,"parent":-1,"name":"r","start":0,"end":0})"));
  EXPECT_EQ(ParseTraceHeaderLine(R"({"trace_schema":1,"clock":"wall"})"),
            TraceClockMode::kWall);
  EXPECT_THROW(ParseTraceHeaderLine(R"({"trace_schema":99,"clock":"wall"})"),
               InvalidModelError);
  EXPECT_THROW(ParseTraceHeaderLine(R"({"trace_schema":1,"clock":"sun"})"),
               InvalidModelError);
}

// ------------------------------------- metrics JSONL through the codec

TEST(MetricsProtocolTest, RequestRoundTripsThroughParseMessageLine) {
  serve::MetricsRequest request;
  request.id = "m1";
  const std::string line = serve::MetricsRequestToJsonLine(request);
  const serve::ServeMessage message = serve::ParseMessageLine(line);
  EXPECT_TRUE(message.is_metrics);
  EXPECT_FALSE(message.is_stats);
  EXPECT_FALSE(message.is_session);
  EXPECT_EQ(message.metrics.id, "m1");
  EXPECT_EQ(message.metrics.protocol_version, serve::kProtocolV2);
}

TEST(MetricsProtocolTest, ResponseCarriesRegistrySnapshotAndProvenance) {
  MetricsRegistry registry;
  registry.GetCounter("hits").Add(7);
  registry.GetGauge("depth").Set(-2);
  Histogram& histogram = registry.GetHistogram("req_us");
  histogram.Record(0);
  histogram.Record(5);
  histogram.Record(5);

  serve::MetricsRequest request;
  request.id = "m2";
  const std::string line =
      serve::MetricsResponseToJsonLine(request, registry.Snapshot());
  const JsonValue json = JsonValue::Parse(line);
  EXPECT_EQ(json.At("type").AsString(), "metrics");
  EXPECT_EQ(json.At("id").AsString(), "m2");
  EXPECT_EQ(json.At("status").AsString(), "ok");
  EXPECT_EQ(json.At("provenance").kind(), JsonValue::Kind::kObject);
  EXPECT_FALSE(json.At("provenance").At("git_sha").AsString().empty());
  EXPECT_EQ(json.At("counters").At("hits").AsUint(), 7u);
  EXPECT_EQ(json.At("gauges").At("depth").AsInt(), -2);
  const JsonValue& req_us = json.At("histograms").At("req_us");
  EXPECT_EQ(req_us.At("count").AsUint(), 3u);
  EXPECT_EQ(req_us.At("sum").AsUint(), 10u);
  // Zero-count buckets are omitted: value 0 lands in [0,0], the two
  // 5s in [4,7].
  const std::vector<JsonValue>& buckets = req_us.At("buckets").Items();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].Items().at(0).AsUint(), 0u);
  EXPECT_EQ(buckets[0].Items().at(1).AsUint(), 1u);
  EXPECT_EQ(buckets[1].Items().at(0).AsUint(), 7u);
  EXPECT_EQ(buckets[1].Items().at(1).AsUint(), 2u);

  // The operator text renders from the same line.
  const std::string text = serve::MetricsTextFromJson(line, "serve: ");
  EXPECT_NE(text.find("serve: counter hits = 7"), std::string::npos);
  EXPECT_NE(text.find("req_us: 3 samples, sum 10"), std::string::npos);
  EXPECT_NE(text.find("p99 <= 7"), std::string::npos);

  // And the dispatcher recognizes the parsed request as metrics; a
  // non-metrics line is rejected by the text renderer.
  EXPECT_THROW(
      serve::MetricsTextFromJson(R"({"type":"stats","status":"ok"})", ""),
      serve::ProtocolError);
}

}  // namespace
}  // namespace nocdr::obs
