// Unit tests for routes and route validation.
#include "noc/routing.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nocdr {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = topo_.AddSwitch("A");
    b_ = topo_.AddSwitch("B");
    c_ = topo_.AddSwitch("C");
    ab_ = topo_.AddLink(a_, b_);
    bc_ = topo_.AddLink(b_, c_);
    ca_ = topo_.AddLink(c_, a_);
    cab_ = *topo_.FindChannel(ab_, 0);
    cbc_ = *topo_.FindChannel(bc_, 0);
    cca_ = *topo_.FindChannel(ca_, 0);
  }

  TopologyGraph topo_;
  SwitchId a_, b_, c_;
  LinkId ab_, bc_, ca_;
  ChannelId cab_, cbc_, cca_;
};

TEST_F(RoutingTest, ValidTwoHopRoute) {
  EXPECT_NO_THROW(ValidateRoute(topo_, {cab_, cbc_}, a_, c_, "t"));
}

TEST_F(RoutingTest, EmptyRouteSameSwitchOk) {
  EXPECT_NO_THROW(ValidateRoute(topo_, {}, a_, a_, "t"));
}

TEST_F(RoutingTest, EmptyRouteDistinctSwitchesRejected) {
  EXPECT_THROW(ValidateRoute(topo_, {}, a_, b_, "t"), InvalidModelError);
}

TEST_F(RoutingTest, WrongStartRejected) {
  EXPECT_THROW(ValidateRoute(topo_, {cbc_}, a_, c_, "t"), InvalidModelError);
}

TEST_F(RoutingTest, WrongEndRejected) {
  EXPECT_THROW(ValidateRoute(topo_, {cab_}, a_, c_, "t"), InvalidModelError);
}

TEST_F(RoutingTest, DiscontiguousRejected) {
  EXPECT_THROW(ValidateRoute(topo_, {cab_, cca_}, a_, a_, "t"),
               InvalidModelError);
}

TEST_F(RoutingTest, RepeatedChannelRejected) {
  // A full loop around the triangle and once more over ab.
  EXPECT_THROW(
      ValidateRoute(topo_, {cab_, cbc_, cca_, cab_}, a_, b_, "t"),
      InvalidModelError);
}

TEST_F(RoutingTest, UnknownChannelRejected) {
  EXPECT_THROW(ValidateRoute(topo_, {ChannelId(99u)}, a_, b_, "t"),
               InvalidModelError);
}

TEST_F(RoutingTest, FullCycleRouteIsValidIfDistinctChannels) {
  // a -> b -> c -> a uses three distinct channels: structurally fine
  // (the CDG analysis decides whether it is safe, not route validation).
  EXPECT_NO_THROW(ValidateRoute(topo_, {cab_, cbc_, cca_}, a_, a_, "t"));
}

TEST_F(RoutingTest, RouteSetAccessors) {
  RouteSet rs(2);
  EXPECT_EQ(rs.FlowCount(), 2u);
  rs.SetRoute(FlowId(0u), {cab_});
  EXPECT_EQ(rs.RouteOf(FlowId(0u)).size(), 1u);
  EXPECT_TRUE(rs.RouteOf(FlowId(1u)).empty());
  rs.MutableRouteOf(FlowId(1u)).push_back(cbc_);
  EXPECT_EQ(rs.RouteOf(FlowId(1u)).size(), 1u);
}

TEST_F(RoutingTest, RouteSetOutOfRangeThrows) {
  RouteSet rs(1);
  EXPECT_THROW((void)rs.RouteOf(FlowId(1u)), InvalidModelError);
  EXPECT_THROW(rs.SetRoute(FlowId(), {}), InvalidModelError);
}

TEST_F(RoutingTest, ResizeGrows) {
  RouteSet rs;
  EXPECT_EQ(rs.FlowCount(), 0u);
  rs.Resize(3);
  EXPECT_EQ(rs.FlowCount(), 3u);
}

}  // namespace
}  // namespace nocdr
