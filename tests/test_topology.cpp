// Unit tests for the topology graph.
#include "noc/topology.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nocdr {
namespace {

TEST(TopologyTest, EmptyGraph) {
  TopologyGraph t;
  EXPECT_EQ(t.SwitchCount(), 0u);
  EXPECT_EQ(t.LinkCount(), 0u);
  EXPECT_EQ(t.ChannelCount(), 0u);
}

TEST(TopologyTest, AddSwitchAssignsDenseIds) {
  TopologyGraph t;
  EXPECT_EQ(t.AddSwitch().value(), 0u);
  EXPECT_EQ(t.AddSwitch().value(), 1u);
  EXPECT_EQ(t.SwitchCount(), 2u);
}

TEST(TopologyTest, DefaultSwitchNames) {
  TopologyGraph t;
  const SwitchId s = t.AddSwitch();
  EXPECT_EQ(t.SwitchName(s), "SW0");
  const SwitchId named = t.AddSwitch("router_x");
  EXPECT_EQ(t.SwitchName(named), "router_x");
}

TEST(TopologyTest, AddLinkCreatesImplicitChannel) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  const LinkId l = t.AddLink(a, b);
  EXPECT_EQ(t.LinkCount(), 1u);
  EXPECT_EQ(t.ChannelCount(), 1u);
  EXPECT_EQ(t.VcCount(l), 1u);
  EXPECT_EQ(t.ExtraVcCount(), 0u);
  const Channel& ch = t.ChannelAt(t.ChannelsOf(l)[0]);
  EXPECT_EQ(ch.link, l);
  EXPECT_EQ(ch.vc, 0u);
}

TEST(TopologyTest, SelfLoopRejected) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch();
  EXPECT_THROW(t.AddLink(a, a), InvalidModelError);
}

TEST(TopologyTest, LinkToUnknownSwitchRejected) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch();
  EXPECT_THROW(t.AddLink(a, SwitchId(5u)), InvalidModelError);
  EXPECT_THROW(t.AddLink(SwitchId(), a), InvalidModelError);
}

TEST(TopologyTest, AddVirtualChannelIncrementsVc) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  const LinkId l = t.AddLink(a, b);
  const ChannelId extra = t.AddVirtualChannel(l);
  EXPECT_EQ(t.ChannelAt(extra).vc, 1u);
  EXPECT_EQ(t.VcCount(l), 2u);
  EXPECT_EQ(t.ExtraVcCount(), 1u);
}

TEST(TopologyTest, AdjacencyLists) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch(), c = t.AddSwitch();
  const LinkId ab = t.AddLink(a, b);
  const LinkId ac = t.AddLink(a, c);
  const LinkId cb = t.AddLink(c, b);
  EXPECT_EQ(t.OutLinks(a).size(), 2u);
  EXPECT_EQ(t.InLinks(b).size(), 2u);
  EXPECT_EQ(t.OutLinks(c), std::vector<LinkId>{cb});
  EXPECT_EQ(t.InLinks(c), std::vector<LinkId>{ac});
  EXPECT_EQ(t.InLinks(a).size(), 0u);
  (void)ab;
}

TEST(TopologyTest, FindLink) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  const LinkId l = t.AddLink(a, b);
  EXPECT_EQ(t.FindLink(a, b), l);
  EXPECT_EQ(t.FindLink(b, a), std::nullopt);
}

TEST(TopologyTest, FindChannel) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  const LinkId l = t.AddLink(a, b);
  EXPECT_TRUE(t.FindChannel(l, 0).has_value());
  EXPECT_FALSE(t.FindChannel(l, 1).has_value());
  t.AddVirtualChannel(l);
  EXPECT_TRUE(t.FindChannel(l, 1).has_value());
}

TEST(TopologyTest, ChannelLabel) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch("A"), b = t.AddSwitch("B");
  const LinkId l = t.AddLink(a, b);
  const ChannelId extra = t.AddVirtualChannel(l);
  EXPECT_EQ(t.ChannelLabel(extra), "A->B.vc1");
}

TEST(TopologyTest, ParallelLinksAllowed) {
  TopologyGraph t;
  const SwitchId a = t.AddSwitch(), b = t.AddSwitch();
  const LinkId l1 = t.AddLink(a, b);
  const LinkId l2 = t.AddLink(a, b);
  EXPECT_NE(l1, l2);
  EXPECT_EQ(t.LinkCount(), 2u);
  // FindLink returns the first.
  EXPECT_EQ(t.FindLink(a, b), l1);
}

TEST(TopologyTest, InvalidAccessorsThrow) {
  TopologyGraph t;
  EXPECT_THROW((void)t.SwitchName(SwitchId(0u)), InvalidModelError);
  EXPECT_THROW((void)t.LinkAt(LinkId(0u)), InvalidModelError);
  EXPECT_THROW((void)t.ChannelAt(ChannelId(0u)), InvalidModelError);
  EXPECT_THROW((void)t.ChannelsOf(LinkId(0u)), InvalidModelError);
  EXPECT_THROW(t.AddVirtualChannel(LinkId(3u)), InvalidModelError);
}

}  // namespace
}  // namespace nocdr
