// Fault-injection subsystem: plan determinism, online reconfiguration
// against its from-scratch reference, infeasibility honesty, table
// detours, and the fault-reconfig campaign contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/removal.h"
#include "deadlock/verify.h"
#include "fault/plan.h"
#include "fault/reconfigure.h"
#include "gen/generators.h"
#include "synth/route_builder.h"
#include "test_helpers.h"
#include "util/error.h"
#include "valid/fault_campaign.h"

namespace nocdr {
namespace {

using fault::FaultBurst;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultPlanOptions;
using fault::FaultState;

bool SameEvents(const FaultPlan& a, const FaultPlan& b) {
  if (a.bursts.size() != b.bursts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    if (a.bursts[i].size() != b.bursts[i].size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.bursts[i].size(); ++j) {
      const FaultEvent& x = a.bursts[i][j];
      const FaultEvent& y = b.bursts[i][j];
      if (x.kind != y.kind || x.link != y.link ||
          x.switch_id != y.switch_id) {
        return false;
      }
    }
  }
  return true;
}

TEST(FaultPlanTest, DeterministicInSeed) {
  const NocDesign design = testing::MakeRandomDesign(5, 10, 14, 30);
  FaultPlanOptions options;
  options.bursts = 3;
  EXPECT_TRUE(SameEvents(fault::DrawFaultPlan(design, 42, options),
                         fault::DrawFaultPlan(design, 42, options)));
  // Different seeds should (for this design) pick different victims.
  EXPECT_FALSE(SameEvents(fault::DrawFaultPlan(design, 42, options),
                          fault::DrawFaultPlan(design, 43, options)));
}

TEST(FaultPlanTest, NeverNamesAnElementTwice) {
  const NocDesign design = testing::MakeRandomDesign(9, 12, 16, 40);
  FaultPlanOptions options;
  options.bursts = 4;
  options.max_links_per_burst = 3;
  options.disconnect_tolerance = 1.0;  // no guard: maximum churn
  const FaultPlan plan = fault::DrawFaultPlan(design, 17, options);
  std::vector<std::uint32_t> links;
  for (const FaultBurst& burst : plan.bursts) {
    for (const FaultEvent& event : burst) {
      if (event.kind == FaultKind::kLink) {
        links.push_back(event.link.value());
      }
    }
  }
  std::sort(links.begin(), links.end());
  EXPECT_EQ(std::adjacent_find(links.begin(), links.end()), links.end());
}

TEST(FaultPlanTest, GuardedPlansKeepAttachmentsConnected) {
  // With tolerance 0 every drawn burst must be survivable: applying the
  // whole plan leaves every flow's endpoints mutually reachable.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const NocDesign design = testing::MakeRandomDesign(seed, 10, 14, 30);
    FaultPlanOptions options;
    options.bursts = 3;
    options.disconnect_tolerance = 0.0;
    const FaultPlan plan = fault::DrawFaultPlan(design, seed * 7, options);
    FaultState state = FaultState::None(design);
    for (const FaultBurst& burst : plan.bursts) {
      state.Apply(design, burst);
    }
    // Reuse the pipeline's own feasibility scan target: no affected flow
    // may be disconnected.
    NocDesign scratch = design;
    auto cdg = ChannelDependencyGraph::Build(scratch);
    DirtyCycleFinder finder(cdg);
    FaultState fresh = FaultState::None(scratch);
    for (const FaultBurst& burst : plan.bursts) {
      const auto report =
          fault::ApplyFaultBurst(scratch, cdg, finder, fresh, burst);
      EXPECT_FALSE(report.infeasible()) << "seed " << seed;
    }
  }
}

TEST(FaultStateTest, SwitchFailureFansOutToIncidentLinks) {
  const auto ex = testing::MakePaperExample();
  FaultState state = FaultState::None(ex.design);
  // SW2 is l1's dst and l2's src.
  state.Apply(ex.design, {{FaultKind::kSwitch, LinkId(), SwitchId(1)}});
  EXPECT_TRUE(state.SwitchFailed(SwitchId(1)));
  EXPECT_TRUE(state.LinkFailed(ex.l1));
  EXPECT_TRUE(state.LinkFailed(ex.l2));
  EXPECT_FALSE(state.LinkFailed(ex.l3));
  EXPECT_EQ(state.FailedLinkCount(), 2u);
  EXPECT_EQ(state.FailedSwitchCount(), 1u);
}

TEST(FaultReconfigureTest, AffectedFlowsMatchesRoutes) {
  const auto ex = testing::MakePaperExample();
  FaultState state = FaultState::None(ex.design);
  state.Apply(ex.design, {{FaultKind::kLink, ex.l2, SwitchId()}});
  // Routes touching l2's channel c2: F1 {c1,c2,c3} and F4 {c1,c2}.
  EXPECT_EQ(fault::AffectedFlows(ex.design, state),
            (std::vector<FlowId>{ex.f1, ex.f4}));
  const auto dead = fault::DeadChannelMask(ex.design, state);
  EXPECT_EQ(dead[ex.c2.value()], 1);
  EXPECT_EQ(dead[ex.c1.value()], 0);
}

TEST(FaultReconfigureTest, InfeasibleBurstMutatesNothing) {
  // The paper example's ring has no redundancy: killing l2 strands F1/F4.
  auto ex = testing::MakePaperExample();
  NocDesign design = ex.design;
  RemoveDeadlocks(design);
  const RouteSet routes_before = design.routes;
  const std::size_t channels_before = design.topology.ChannelCount();

  auto cdg = ChannelDependencyGraph::Build(design);
  DirtyCycleFinder finder(cdg);
  FaultState state = FaultState::None(design);
  const auto report = fault::ApplyFaultBurst(
      design, cdg, finder, state, {{FaultKind::kLink, ex.l2, SwitchId()}});

  ASSERT_TRUE(report.infeasible());
  EXPECT_EQ(report.disconnected_flows, (std::vector<FlowId>{ex.f1, ex.f4}));
  EXPECT_EQ(design.topology.ChannelCount(), channels_before);
  EXPECT_FALSE(state.LinkFailed(ex.l2)) << "state must not advance";
  for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
    EXPECT_EQ(design.routes.RouteOf(FlowId(f)),
              routes_before.RouteOf(FlowId(f)));
  }
  EXPECT_TRUE(cdg.SameDependencies(ChannelDependencyGraph::Build(design)));
}

TEST(FaultReconfigureTest, ReroutesAroundTheFaultAndStaysCertified) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    NocDesign design = testing::MakeRandomDesign(seed, 10, 14, 30);
    RemoveDeadlocks(design);
    auto cdg = ChannelDependencyGraph::Build(design);
    DirtyCycleFinder finder(cdg);
    FaultState state = FaultState::None(design);

    FaultPlanOptions options;
    options.bursts = 2;
    options.disconnect_tolerance = 0.0;
    const FaultPlan plan = fault::DrawFaultPlan(design, seed, options);
    fault::ReconfigureOptions opts;
    opts.paranoid_validation = true;  // Validate() + CDG cross-check
    for (const FaultBurst& burst : plan.bursts) {
      const auto report =
          fault::ApplyFaultBurst(design, cdg, finder, state, burst, opts);
      ASSERT_FALSE(report.infeasible()) << "seed " << seed;
      // No surviving route may cross a failed link.
      for (std::size_t f = 0; f < design.traffic.FlowCount(); ++f) {
        for (const ChannelId c : design.routes.RouteOf(FlowId(f))) {
          EXPECT_FALSE(
              state.LinkFailed(design.topology.ChannelAt(c).link))
              << "seed " << seed << " flow " << f;
        }
      }
      const DeadlockCertificate cert = CertifyFromCdg(design, cdg);
      EXPECT_TRUE(cert.deadlock_free);
      EXPECT_TRUE(CheckCertificate(design, cert));
    }
  }
}

TEST(FaultReconfigureTest, IncrementalMatchesRebuildReference) {
  for (std::uint64_t seed = 31; seed <= 40; ++seed) {
    NocDesign inc = testing::MakeRandomDesign(seed, 10, 14, 30);
    RemoveDeadlocks(inc);
    NocDesign reb = inc;
    auto cdg = ChannelDependencyGraph::Build(inc);
    DirtyCycleFinder finder(cdg);
    FaultState state_inc = FaultState::None(inc);
    FaultState state_reb = FaultState::None(reb);

    FaultPlanOptions options;
    options.bursts = 3;
    const FaultPlan plan = fault::DrawFaultPlan(inc, seed * 3, options);
    for (const FaultBurst& burst : plan.bursts) {
      const auto rep_inc =
          fault::ApplyFaultBurst(inc, cdg, finder, state_inc, burst);
      const auto rep_reb =
          fault::ApplyFaultBurstRebuild(reb, state_reb, burst);
      ASSERT_EQ(rep_inc.infeasible(), rep_reb.infeasible());
      ASSERT_EQ(rep_inc.affected_flows, rep_reb.affected_flows);
      if (rep_inc.infeasible()) {
        break;
      }
      EXPECT_EQ(rep_inc.removal.iterations, rep_reb.removal.iterations);
      EXPECT_EQ(rep_inc.removal.vcs_added, rep_reb.removal.vcs_added);
      ASSERT_EQ(inc.topology.ChannelCount(), reb.topology.ChannelCount());
      for (std::size_t f = 0; f < inc.traffic.FlowCount(); ++f) {
        ASSERT_EQ(inc.routes.RouteOf(FlowId(f)),
                  reb.routes.RouteOf(FlowId(f)))
            << "seed " << seed << " flow " << f;
      }
      ASSERT_TRUE(cdg.SameDependencies(ChannelDependencyGraph::Build(inc)));
    }
  }
}

TEST(FaultReconfigureTest, TableDetourPatchesInsteadOfRippingUp) {
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kMesh2D;
  spec.width = 5;
  spec.height = 5;
  spec.pattern = gen::TrafficPattern::kUniform;
  spec.uniform_fanout = 3;
  spec.seed = 3;
  NextHopTable table;
  NocDesign design = gen::GenerateStandardDesign(spec, &table);
  ASSERT_FALSE(table.empty());
  RemoveDeadlocks(design);

  auto cdg = ChannelDependencyGraph::Build(design);
  DirtyCycleFinder finder(cdg);
  FaultState state = FaultState::None(design);
  FaultPlanOptions plan_options;
  plan_options.bursts = 1;
  plan_options.disconnect_tolerance = 0.0;
  plan_options.switch_fault_probability = 0.0;
  const FaultPlan plan = fault::DrawFaultPlan(design, 2, plan_options);
  ASSERT_FALSE(plan.bursts.front().empty());

  fault::ReconfigureOptions opts;
  opts.table = &table;
  const auto report = fault::ApplyFaultBurst(design, cdg, finder, state,
                                             plan.bursts.front(), opts);
  ASSERT_FALSE(report.infeasible());
  EXPECT_GT(report.affected_flows.size(), 0u);
  EXPECT_EQ(report.table_detours, report.affected_flows.size());
  EXPECT_EQ(report.ripup_reroutes, 0u);
  // The patched table must still be complete and loop-free for every
  // surviving pair (dead entries are allowed to be holes).
  EXPECT_NO_THROW(ValidateNextHopTable(design.topology, table));
  design.Validate();
}

TEST(FaultReconfigureTest, TablePatchSurvivesARoutingLoopInTheInput) {
  // A corrupted table whose walk toward C cycles A -> B -> A must be
  // classified as broken (loop guard), not chased forever; the patch
  // then invalidates the unroutable entries and the table validates.
  TopologyGraph topology;
  const SwitchId a = topology.AddSwitch("A");
  const SwitchId b = topology.AddSwitch("B");
  const SwitchId c = topology.AddSwitch("C");
  const LinkId ab = topology.AddLink(a, b);
  const LinkId ba = topology.AddLink(b, a);
  NextHopTable looped(3, std::vector<LinkId>(3));
  looped[a.value()][c.value()] = ab;
  looped[b.value()][c.value()] = ba;  // the loop: C is never reached
  const std::size_t unroutable =
      PatchNextHopTable(topology, looped, {}, {});
  EXPECT_EQ(unroutable, 2u);  // both entries were filled, C has no in-links
  EXPECT_FALSE(looped[a.value()][c.value()].valid());
  EXPECT_FALSE(looped[b.value()][c.value()].valid());
  EXPECT_NO_THROW(ValidateNextHopTable(topology, looped));
}

TEST(DirtyCycleFinderTest, ExternalEdgeTaintRestoresExactness) {
  // Start from the acyclic half of the paper example, let the finder
  // cache "no cycle", then close the ring with edges between
  // pre-existing vertices — exactly what a fault re-route does.
  const auto ex = testing::MakePaperExample();
  ChannelDependencyGraph cdg;
  cdg.EnsureVertices(ex.design.topology.ChannelCount());
  cdg.AddEdges({ex.c1, ex.c2, ex.c3}, ex.f1);
  DirtyCycleFinder finder(cdg);
  EXPECT_FALSE(finder.Pick(CyclePolicy::kSmallestFirst).has_value());

  const Route closing = {ex.c3, ex.c4, ex.c1};
  cdg.AddEdges(closing, ex.f2);
  finder.NoteExternalEdges(closing);
  const auto dirty = finder.Pick(CyclePolicy::kSmallestFirst);
  const auto full = PickCycle(cdg, CyclePolicy::kSmallestFirst);
  ASSERT_TRUE(dirty.has_value());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*dirty, *full);

  // And removal of the same edges needs no taint at all.
  cdg.RemoveEdges(closing, ex.f2);
  EXPECT_FALSE(finder.Pick(CyclePolicy::kSmallestFirst).has_value());
}

TEST(FaultCampaignTest, SmallCampaignIsCleanAndThreadStable) {
  valid::FaultCampaignConfig config;
  config.trials = 20;
  config.base_seed = 5;
  config.threads = 2;
  const auto result = valid::RunFaultCampaign(config);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.rows.size(), 20u);
  for (const auto& row : result.rows) {
    EXPECT_TRUE(row.mismatch.empty()) << row.mismatch;
  }

  valid::FaultCampaignConfig serial = config;
  serial.threads = 1;
  EXPECT_EQ(valid::RunFaultCampaign(serial).digest, result.digest);
}

TEST(FaultCampaignTest, TrialRowsAreDeterministic) {
  valid::FaultCampaignConfig config;
  const auto a = valid::RunFaultTrial(valid::DesignSource::kTorus, 99, config);
  const auto b = valid::RunFaultTrial(valid::DesignSource::kTorus, 99, config);
  EXPECT_EQ(valid::FaultDigest({a}), valid::FaultDigest({b}));
}

}  // namespace
}  // namespace nocdr
