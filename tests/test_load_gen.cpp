// src/serve/load_gen: seeded arrival traces, virtual-time replay and
// the open-loop determinism contract (identical combined digest at any
// client thread count).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/load_gen.h"
#include "serve/service.h"
#include "serve/session.h"
#include "test_helpers.h"
#include "util/canonical.h"

namespace nocdr {
namespace {

using serve::CertRequest;
using serve::CertificationService;
using serve::RequestKind;
using serve::ServiceConfig;
using serve::SessionService;
using serve::load::ArrivalConfig;
using serve::load::ArrivalKind;
using serve::load::EventOutcome;
using serve::load::GenerateTrace;
using serve::load::LoadReport;
using serve::load::ReplayConfig;
using serve::load::ReplayTrace;
using serve::load::RunOpenLoop;
using serve::load::TraceClassMix;
using serve::load::TraceItem;
using serve::load::Verdict;
using serve::load::WorkItem;
using serve::sched::Discipline;
using testing::MakeRandomDesign;
using testing::MakeRingDesign;

// ---------------------------------------------------------------- traces

TEST(LoadGenTest, TraceIsSeedDeterministicAndMonotone) {
  ArrivalConfig arrival;
  arrival.rate_per_sec = 1000.0;
  const std::vector<TraceClassMix> mix = {{"interactive", 0, 3.0},
                                          {"batch", 2, 1.0}};
  const std::vector<TraceItem> a = GenerateTrace(arrival, 200, 10, mix, 99);
  const std::vector<TraceItem> b = GenerateTrace(arrival, 200, 10, mix, 99);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].work_index, b[i].work_index);
    EXPECT_EQ(a[i].class_name, b[i].class_name);
    EXPECT_LT(a[i].work_index, 10u);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
  }
  // Both classes actually appear, the 3:1 mix dominant one more often.
  std::size_t interactive = 0;
  for (const TraceItem& item : a) {
    interactive += item.class_name == "interactive" ? 1 : 0;
  }
  EXPECT_GT(interactive, 100u);
  EXPECT_LT(interactive, 200u);
  // A different seed draws a different timeline.
  const std::vector<TraceItem> c = GenerateTrace(arrival, 200, 10, mix, 100);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || a[i].arrival_us != c[i].arrival_us;
  }
  EXPECT_TRUE(any_different);
}

TEST(LoadGenTest, BurstyTraceClustersArrivals) {
  ArrivalConfig poisson;
  poisson.rate_per_sec = 500.0;
  ArrivalConfig bursty = poisson;
  bursty.kind = ArrivalKind::kBursty;
  const std::vector<TraceItem> smooth = GenerateTrace(poisson, 500, 4, {}, 7);
  const std::vector<TraceItem> clumped = GenerateTrace(bursty, 500, 4, {}, 7);
  // Dispersion test: the burstier process has a higher variance of
  // inter-arrival gaps relative to its mean (index of dispersion).
  const auto dispersion = [](const std::vector<TraceItem>& trace) {
    double mean = 0.0;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      gaps.push_back(static_cast<double>(trace[i].arrival_us -
                                         trace[i - 1].arrival_us));
      mean += gaps.back();
    }
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (const double g : gaps) {
      var += (g - mean) * (g - mean);
    }
    var /= static_cast<double>(gaps.size());
    return var / mean;
  };
  EXPECT_GT(dispersion(clumped), 2.0 * dispersion(smooth));
}

// ---------------------------------------------------------------- replay

/// A hand trace: arrival times and per-item costs chosen so the exact
/// timeline is checkable on paper.
std::vector<TraceItem> HandTrace(
    const std::vector<std::uint64_t>& arrivals) {
  std::vector<TraceItem> trace;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    TraceItem item;
    item.arrival_us = arrivals[i];
    item.work_index = i;
    trace.push_back(item);
  }
  return trace;
}

TEST(LoadGenTest, ReplayTimelineIsExactWithOneServer) {
  // One server, cost == service time in us. Arrivals at 0, 10, 200:
  // the first runs [0,100), the second waits [10,100) and runs
  // [100,150), the third finds the server *idle* again (empty-queue
  // wakeup) and starts at its own arrival.
  ReplayConfig config;
  config.servers = 1;
  const LoadReport report = ReplayTrace(
      HandTrace({0, 10, 200}), {100, 50, 30}, config);
  ASSERT_EQ(report.events.size(), 3u);
  EXPECT_EQ(report.events[0].start_us, 0u);
  EXPECT_EQ(report.events[0].done_us, 100u);
  EXPECT_EQ(report.events[1].start_us, 100u);
  EXPECT_EQ(report.events[1].done_us, 150u);
  EXPECT_EQ(report.events[2].start_us, 200u);
  EXPECT_EQ(report.events[2].done_us, 230u);
  EXPECT_EQ(report.served, 3u);
  EXPECT_EQ(report.makespan_us, 230u);
  EXPECT_EQ(report.latency.max, 140u);  // the queued job: 150 - 10
}

TEST(LoadGenTest, ReplayQueueBoundRejectsOverflow) {
  // One server busy [0,1000), queue capacity 1: the third concurrent
  // arrival has nowhere to go and is rejected "overloaded".
  ReplayConfig config;
  config.servers = 1;
  config.queue_capacity = 1;
  const LoadReport report = ReplayTrace(
      HandTrace({0, 1, 2, 3}), {1000, 10, 10, 10}, config);
  EXPECT_EQ(report.events[0].verdict, Verdict::kServed);
  EXPECT_EQ(report.events[1].verdict, Verdict::kServed);
  EXPECT_EQ(report.events[2].verdict, Verdict::kRejectedQueue);
  EXPECT_EQ(report.events[3].verdict, Verdict::kRejectedQueue);
  EXPECT_EQ(report.rejected_queue, 2u);
  // Rejected events take zero time on the timeline.
  EXPECT_EQ(report.events[2].done_us, report.events[2].arrival_us);
}

TEST(LoadGenTest, ReplayTokenBudgetRejectsAndTracksClasses) {
  ReplayConfig config;
  config.servers = 4;
  config.admission.enabled = true;
  config.admission.tokens_per_sec = 1.0;  // ~0 refill over a short trace
  config.admission.burst = 2.0;
  std::vector<TraceItem> trace = HandTrace({0, 1, 2, 3});
  for (TraceItem& item : trace) {
    item.class_name = "batch";
    item.rank = 1;
  }
  const LoadReport report =
      ReplayTrace(trace, {10, 10, 10, 10}, config);
  EXPECT_EQ(report.served, 2u);  // burst capacity
  EXPECT_EQ(report.rejected_tokens, 2u);
  bool found = false;
  for (const auto& c : report.classes) {
    if (c.name == "batch") {
      found = true;
      EXPECT_EQ(c.arrivals, 4u);
      EXPECT_EQ(c.served, 2u);
      EXPECT_EQ(c.rejected_tokens, 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LoadGenTest, SjfOvertakesFifoUnderBacklog) {
  // Server busy [0,1000); a costly and a cheap job queue behind it.
  // FIFO serves them in arrival order; SJF lets the cheap one overtake.
  const std::vector<TraceItem> trace = HandTrace({0, 1, 2});
  const std::vector<std::uint64_t> costs = {1000, 500, 10};
  ReplayConfig fifo;
  fifo.servers = 1;
  ReplayConfig sjf = fifo;
  sjf.discipline = Discipline::kSjf;
  const LoadReport f = ReplayTrace(trace, costs, fifo);
  const LoadReport s = ReplayTrace(trace, costs, sjf);
  EXPECT_LT(f.events[1].start_us, f.events[2].start_us);
  EXPECT_LT(s.events[2].start_us, s.events[1].start_us);
  EXPECT_NE(f.digest, s.digest);
  EXPECT_LT(s.latency.p50, f.latency.p50);  // SJF shrinks the median
}

TEST(LoadGenTest, ReplayDigestIsReproducible) {
  // Overload on purpose (mean service ~400 us x 2 servers vs a 50 us
  // inter-arrival): the ready queue stays deep, so the discipline
  // actually decides the timeline and the digests can differ.
  ArrivalConfig arrival;
  arrival.rate_per_sec = 20000.0;
  arrival.kind = ArrivalKind::kBursty;
  const std::vector<TraceClassMix> mix = {{"interactive", 0, 2.0},
                                          {"batch", 3, 1.0}};
  const std::vector<TraceItem> trace =
      GenerateTrace(arrival, 400, 16, mix, 1234);
  std::vector<std::uint64_t> costs;
  for (std::size_t i = 0; i < 16; ++i) {
    costs.push_back(100 + 40 * i);
  }
  ReplayConfig config;
  config.discipline = Discipline::kPriority;
  config.servers = 2;
  config.admission.enabled = true;
  config.admission.tokens_per_sec = 15000.0;
  const LoadReport a = ReplayTrace(trace, costs, config);
  const LoadReport b = ReplayTrace(trace, costs, config);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  // The digest is sensitive to the policy...
  ReplayConfig fifo = config;
  fifo.discipline = Discipline::kFifo;
  EXPECT_NE(ReplayTrace(trace, costs, fifo).digest, a.digest);
  // ...and to the trace seed.
  const std::vector<TraceItem> other =
      GenerateTrace(arrival, 400, 16, mix, 1235);
  EXPECT_NE(ReplayTrace(other, costs, config).digest, a.digest);
}

// ------------------------------------------------- open-loop, real serve

TEST(LoadGenTest, OpenLoopCombinedDigestIsThreadCountStable) {
  // The acceptance bar: same (trace seed, arrival, discipline) -> the
  // same combined digest when the real serving pass runs on 1 and on 4
  // client threads. Fresh service + session per run: session bursts
  // mutate state, so each run replays from scratch.
  const auto run_once = [](std::size_t client_threads) {
    ServiceConfig service_config;
    service_config.threads = 2;
    CertificationService service(service_config);
    SessionService sessions(service);

    std::vector<WorkItem> corpus;
    for (std::size_t i = 0; i < 4; ++i) {
      WorkItem item;
      const NocDesign design = MakeRandomDesign(1000 + i);
      item.certify.id = "w" + std::to_string(i);
      item.certify.kind = RequestKind::kDesignText;
      item.certify.design_text = DesignText(design);
      item.cost = serve::sched::EstimateCost(design);
      corpus.push_back(std::move(item));
    }
    // One session work item: a burst failing a ring link (idempotent
    // when the trace replays it more than once).
    serve::SessionRequest open;
    open.op = serve::SessionOp::kOpen;
    open.spec.kind = RequestKind::kDesignText;
    open.spec.design_text = DesignText(MakeRandomDesign(77));
    const serve::SessionResponse opened = sessions.Handle(open);
    EXPECT_EQ(opened.status, serve::ServeStatus::kOk);
    WorkItem burst;
    burst.is_session = true;
    burst.burst.op = serve::SessionOp::kBurst;
    burst.burst.session_id = opened.session_id;
    serve::SessionEventSpec event;
    event.kind = fault::FaultKind::kLink;
    event.src = "SW0";
    event.dst = "SW1";
    burst.burst.events.push_back(event);
    burst.cost = 25;
    corpus.push_back(std::move(burst));

    ArrivalConfig arrival;
    arrival.rate_per_sec = 5000.0;
    const std::vector<TraceItem> trace =
        GenerateTrace(arrival, 60, corpus.size(), {}, 42);
    ReplayConfig config;
    config.discipline = Discipline::kSjf;
    config.servers = 2;
    return RunOpenLoop(service, &sessions, corpus, trace, config,
                       client_threads);
  };

  const serve::load::OpenLoopOutcome one = run_once(1);
  const serve::load::OpenLoopOutcome four = run_once(4);
  EXPECT_EQ(one.bad_responses, 0u);
  EXPECT_EQ(four.bad_responses, 0u);
  EXPECT_EQ(one.report.digest, four.report.digest);
  EXPECT_EQ(one.response_digest, four.response_digest);
  EXPECT_EQ(one.session_digest, four.session_digest);
  EXPECT_EQ(one.combined_digest, four.combined_digest);
  EXPECT_GT(one.report.served, 0u);
}

}  // namespace
}  // namespace nocdr
