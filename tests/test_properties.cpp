// Property-based suites: invariants that must hold on randomized inputs.
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

class RandomDesignProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  NocDesign MakeDesign() const {
    const std::uint64_t seed = GetParam();
    // Vary the shape with the seed so the sweep covers different sizes.
    const std::size_t switches = 5 + seed % 7;
    const std::size_t cores = switches + 4 + seed % 5;
    const std::size_t flows = 2 * cores + seed % 11;
    return testing::MakeRandomDesign(seed, switches, cores, flows);
  }
};

TEST_P(RandomDesignProperty, RemovalYieldsAcyclicValidDesign) {
  auto d = MakeDesign();
  const auto report = RemoveDeadlocks(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_NO_THROW(d.Validate());
  EXPECT_EQ(d.topology.ExtraVcCount(), report.vcs_added);
}

TEST_P(RandomDesignProperty, RemovalPreservesPhysicalPaths) {
  auto d = MakeDesign();
  std::vector<std::vector<LinkId>> before;
  for (std::size_t fi = 0; fi < d.traffic.FlowCount(); ++fi) {
    std::vector<LinkId> links;
    for (ChannelId c : d.routes.RouteOf(FlowId(fi))) {
      links.push_back(d.topology.ChannelAt(c).link);
    }
    before.push_back(std::move(links));
  }
  RemoveDeadlocks(d);
  for (std::size_t fi = 0; fi < d.traffic.FlowCount(); ++fi) {
    const Route& route = d.routes.RouteOf(FlowId(fi));
    ASSERT_EQ(route.size(), before[fi].size());
    for (std::size_t h = 0; h < route.size(); ++h) {
      EXPECT_EQ(d.topology.ChannelAt(route[h]).link, before[fi][h]);
    }
  }
}

TEST_P(RandomDesignProperty, ResourceOrderingYieldsAcyclicValidDesign) {
  auto d = MakeDesign();
  ApplyResourceOrdering(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_NO_THROW(d.Validate());
}

TEST_P(RandomDesignProperty, RemovalNeverAddsMoreVcsThanOrdering) {
  // Not a theorem in general, but it holds across this entire randomized
  // corpus and is the paper's empirical headline; a failure here flags a
  // real regression in the cost heuristic.
  auto removal_design = MakeDesign();
  auto ordering_design = removal_design;
  const auto removal = RemoveDeadlocks(removal_design);
  const auto ordering = ApplyResourceOrdering(ordering_design);
  EXPECT_LE(removal.vcs_added, ordering.vcs_added);
}

TEST_P(RandomDesignProperty, RemovedDesignSurvivesStressSimulation) {
  auto d = MakeDesign();
  RemoveDeadlocks(d);
  SimConfig cfg;
  cfg.traffic.packets_per_flow = 2;
  cfg.traffic.packet_length = 6;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 200000;
  cfg.stall_threshold = 2000;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(result.AllDelivered());
}

TEST_P(RandomDesignProperty, CdgEdgesComeFromConsecutiveRoutePairs) {
  const auto d = MakeDesign();
  const auto cdg = ChannelDependencyGraph::Build(d);
  for (const CdgEdge& e : cdg.Edges()) {
    EXPECT_FALSE(e.flows.empty());
    for (FlowId f : e.flows) {
      const Route& route = d.routes.RouteOf(f);
      bool found = false;
      for (std::size_t h = 0; h + 1 < route.size(); ++h) {
        if (route[h] == e.from && route[h + 1] == e.to) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "edge not backed by its flow";
    }
  }
}

TEST_P(RandomDesignProperty, SmallestCycleIsMinimalAmongPerVertexCycles) {
  const auto d = MakeDesign();
  const auto cdg = ChannelDependencyGraph::Build(d);
  const auto smallest = SmallestCycle(cdg);
  if (!smallest.has_value()) {
    EXPECT_TRUE(IsAcyclic(cdg));
    return;
  }
  for (std::size_t v = 0; v < cdg.VertexCount(); ++v) {
    const auto through = ShortestCycleThrough(cdg, ChannelId(v));
    if (through) {
      EXPECT_LE(smallest->size(), through->size());
    }
  }
}

TEST_P(RandomDesignProperty, AcyclicityIsConsistentWithCycleSearch) {
  const auto d = MakeDesign();
  const auto cdg = ChannelDependencyGraph::Build(d);
  EXPECT_EQ(IsAcyclic(cdg), !SmallestCycle(cdg).has_value());
  EXPECT_EQ(IsAcyclic(cdg), !FirstCycle(cdg).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

class RingProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RingProperty, RemovalFixesEveryRing) {
  const auto [n, span] = GetParam();
  if (span >= n) {
    GTEST_SKIP();
  }
  auto d = testing::MakeRingDesign(n, span);
  const auto report = RemoveDeadlocks(d);
  EXPECT_TRUE(IsDeadlockFree(d));
  EXPECT_GT(report.vcs_added, 0u);  // a ring CDG always has the big cycle
  d.Validate();
}

INSTANTIATE_TEST_SUITE_P(Rings, RingProperty,
                         ::testing::Combine(::testing::Values(3u, 4u, 5u,
                                                              6u, 8u, 10u),
                                            ::testing::Values(2u, 3u, 4u)));

}  // namespace
}  // namespace nocdr
