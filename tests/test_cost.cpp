// Unit tests for Algorithm 2 (cost tables). The forward table must
// reproduce the paper's Table 1 exactly.
#include "deadlock/cost.h"

#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

CdgCycle PaperCycle(const testing::PaperExample& ex) {
  return {ex.c1, ex.c2, ex.c3, ex.c4};
}

TEST(CostTest, ForwardTableMatchesTable1) {
  auto ex = testing::MakePaperExample();
  const auto table = ComputeCycleCostTable(ex.design, PaperCycle(ex),
                                           BreakDirection::kForward);
  // Rows F1..F4, columns D1..D4 (Di = edge (ci, c_{i+1 mod 4})).
  ASSERT_EQ(table.flows,
            (std::vector<FlowId>{ex.f1, ex.f2, ex.f3, ex.f4}));
  EXPECT_EQ(table.cost[0], (std::vector<std::size_t>{1, 2, 0, 0}));  // F1
  EXPECT_EQ(table.cost[1], (std::vector<std::size_t>{0, 0, 1, 0}));  // F2
  EXPECT_EQ(table.cost[2], (std::vector<std::size_t>{0, 0, 0, 1}));  // F3
  EXPECT_EQ(table.cost[3], (std::vector<std::size_t>{1, 0, 0, 0}));  // F4
  // MAX row of Table 1.
  EXPECT_EQ(table.combined, (std::vector<std::size_t>{1, 2, 1, 1}));
}

TEST(CostTest, ForwardBestBreakCostOne) {
  auto ex = testing::MakePaperExample();
  const auto best =
      FindDepToBreak(ex.design, PaperCycle(ex), BreakDirection::kForward);
  EXPECT_EQ(best.cost, 1u);
  EXPECT_EQ(best.edge_pos, 0u);  // first minimum: D1
  EXPECT_EQ(best.direction, BreakDirection::kForward);
}

TEST(CostTest, BackwardTablePaperExample) {
  auto ex = testing::MakePaperExample();
  const auto table = ComputeCycleCostTable(ex.design, PaperCycle(ex),
                                           BreakDirection::kBackward);
  ASSERT_EQ(table.flows,
            (std::vector<FlowId>{ex.f1, ex.f2, ex.f3, ex.f4}));
  // F1 = {L1,L2,L3}: breaking D1 backward duplicates L2 and L3 (cost 2);
  // breaking D2 backward duplicates L3 only (cost 1).
  EXPECT_EQ(table.cost[0], (std::vector<std::size_t>{2, 1, 0, 0}));
  // F2 = {L3,L4}: D3 backward duplicates L4 (cost 1).
  EXPECT_EQ(table.cost[1], (std::vector<std::size_t>{0, 0, 1, 0}));
  // F3 = {L4,L1}: D4 backward duplicates L1 (cost 1).
  EXPECT_EQ(table.cost[2], (std::vector<std::size_t>{0, 0, 0, 1}));
  // F4 = {L1,L2}: D1 backward duplicates L2 (cost 1).
  EXPECT_EQ(table.cost[3], (std::vector<std::size_t>{1, 0, 0, 0}));
  EXPECT_EQ(table.combined, (std::vector<std::size_t>{2, 1, 1, 1}));
}

TEST(CostTest, BackwardBestBreak) {
  auto ex = testing::MakePaperExample();
  const auto best =
      FindDepToBreak(ex.design, PaperCycle(ex), BreakDirection::kBackward);
  EXPECT_EQ(best.cost, 1u);
  EXPECT_EQ(best.edge_pos, 1u);  // first minimum: D2
  EXPECT_EQ(best.direction, BreakDirection::kBackward);
}

TEST(CostTest, RotatedCycleGivesRotatedTable) {
  auto ex = testing::MakePaperExample();
  const CdgCycle rotated = {ex.c3, ex.c4, ex.c1, ex.c2};
  const auto table =
      ComputeCycleCostTable(ex.design, rotated, BreakDirection::kForward);
  // Column p of the rotated table is column (p+2) mod 4 of Table 1.
  EXPECT_EQ(table.combined, (std::vector<std::size_t>{1, 1, 1, 2}));
}

TEST(CostTest, FlowsTouchingOneVertexAreExcluded) {
  auto ex = testing::MakePaperExample();
  // Add a flow that uses only L2 (one cycle vertex): must not appear.
  const CoreId a = ex.design.traffic.AddCore("extra_src");
  const CoreId b = ex.design.traffic.AddCore("extra_dst");
  ex.design.attachment.push_back(SwitchId(1u));  // SW2
  ex.design.attachment.push_back(SwitchId(2u));  // SW3
  const FlowId f = ex.design.traffic.AddFlow(a, b, 10.0);
  ex.design.routes.Resize(ex.design.traffic.FlowCount());
  ex.design.routes.SetRoute(f, {ex.c2});
  ex.design.Validate();
  const auto table = ComputeCycleCostTable(ex.design, PaperCycle(ex),
                                           BreakDirection::kForward);
  EXPECT_EQ(table.flows.size(), 4u);  // still only F1..F4
}

TEST(CostTest, NonConsecutiveCycleVerticesCountTowardVal) {
  // Flow visits c1, leaves the cycle, re-enters at c3 and creates edge
  // (c3, c4): the duplication cost at D3 must be 2 (c1 and c3), matching
  // "all channels used by the flow in the cycle prior to the dependency".
  NocDesign d;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 6; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  // Cycle channels: ring sw0->sw1->sw2->sw3->sw0.
  const LinkId l01 = d.topology.AddLink(sw[0], sw[1]);
  const LinkId l12 = d.topology.AddLink(sw[1], sw[2]);
  const LinkId l23 = d.topology.AddLink(sw[2], sw[3]);
  const LinkId l30 = d.topology.AddLink(sw[3], sw[0]);
  // Detour: sw1 -> sw4 -> sw2 (off-cycle path between c1's head and c3's
  // tail... here between sw1 and sw2).
  const LinkId l14 = d.topology.AddLink(sw[1], sw[4]);
  const LinkId l42 = d.topology.AddLink(sw[4], sw[2]);
  const ChannelId c0 = *d.topology.FindChannel(l01, 0);
  const ChannelId c1 = *d.topology.FindChannel(l12, 0);
  const ChannelId c2 = *d.topology.FindChannel(l23, 0);
  const ChannelId c3 = *d.topology.FindChannel(l30, 0);
  const ChannelId det1 = *d.topology.FindChannel(l14, 0);
  const ChannelId det2 = *d.topology.FindChannel(l42, 0);

  // Ring-closing flows, one per edge.
  std::vector<FlowId> flows;
  std::vector<Route> routes;
  auto add_flow = [&](SwitchId s, SwitchId t, Route r) {
    const CoreId cs = d.traffic.AddCore();
    const CoreId ct = d.traffic.AddCore();
    d.attachment.push_back(s);
    d.attachment.push_back(t);
    flows.push_back(d.traffic.AddFlow(cs, ct, 1.0));
    routes.push_back(std::move(r));
  };
  add_flow(sw[0], sw[2], {c0, c1});
  add_flow(sw[1], sw[3], {c1, c2});
  add_flow(sw[2], sw[0], {c2, c3});
  add_flow(sw[3], sw[1], {c3, c0});
  // The detour flow: c0, (off-cycle det1, det2), c2, c3 — creates the
  // dependency (c2, c3) having used cycle vertex c0 earlier.
  add_flow(sw[0], sw[0], {c0, det1, det2, c2, c3});
  d.routes.Resize(d.traffic.FlowCount());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    d.routes.SetRoute(flows[i], routes[i]);
  }
  d.Validate();

  const CdgCycle cycle = {c0, c1, c2, c3};
  const auto table =
      ComputeCycleCostTable(d, cycle, BreakDirection::kForward);
  // The detour flow is the 5th row; at edge D3 = (c2, c3) its val has
  // counted c0 and c2 -> cost 2 (and it also creates D1 = (c0, c1)? No:
  // after c0 it goes off-cycle).
  ASSERT_EQ(table.flows.size(), 5u);
  const auto& detour_row = table.cost[4];
  EXPECT_EQ(detour_row, (std::vector<std::size_t>{0, 0, 2, 0}));
}

TEST(CostTest, EmptyCycleThrows) {
  auto ex = testing::MakePaperExample();
  EXPECT_THROW(
      ComputeCycleCostTable(ex.design, {}, BreakDirection::kForward),
      InvalidModelError);
}

TEST(CostTest, CombinedIsMaxNotSum) {
  auto ex = testing::MakePaperExample();
  const auto table = ComputeCycleCostTable(ex.design, PaperCycle(ex),
                                           BreakDirection::kForward);
  // D1 is created by F1 (cost 1) and F4 (cost 1): combined must be 1.
  EXPECT_EQ(table.combined[0], 1u);
}

}  // namespace
}  // namespace nocdr
