// End-to-end tests of the nocdr_serve and nocdr_trace binaries: exit
// codes (documented in docs/OPERATIONS.md), --version provenance, and
// the byte-determinism contract of --trace-out (same seeded request
// stream -> identical trace files at any thread count, validated by
// nocdr_trace --check).
//
// The binaries are located through the NOCDR_BIN_DIR compile
// definition (CMake sets it to the build directory); if they have not
// been built the tests skip rather than fail, so library-only builds
// stay green.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef NOCDR_BIN_DIR
#define NOCDR_BIN_DIR "."
#endif

namespace nocdr {
namespace {

namespace fs = std::filesystem;

std::string ServeBinary() {
  return std::string(NOCDR_BIN_DIR) + "/nocdr_serve";
}
std::string TraceBinary() {
  return std::string(NOCDR_BIN_DIR) + "/nocdr_trace";
}

/// Runs \p command through the shell and returns its exit code
/// (-1 if the child did not exit normally).
int RunShell(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status == -1) {
    return -1;
  }
#ifdef WIFEXITED
  if (!WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
#else
  return status;
#endif
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A small mixed request stream: repeats (cache hits + coalescing), a
/// v2 session open/burst/close, and a metrics probe.
std::string RequestStream() {
  const char* lines[] = {
      R"({"id":"r0","source":"ring","seed":1})",
      R"({"id":"r1","source":"mesh","seed":2})",
      R"({"id":"r2","source":"ring","seed":1})",
      R"({"id":"r3","source":"fat_tree","seed":3})",
      R"({"protocol_version":2,"type":"session_open","id":"c0",)"
      R"("source":"mesh","seed":9})",
      R"({"protocol_version":2,"type":"session_close","id":"c1",)"
      R"("session":"s1"})",
      R"({"id":"r4","source":"ring","seed":1})",
      R"({"protocol_version":2,"type":"metrics","id":"m0"})",
  };
  std::string stream;
  for (const char* line : lines) {
    stream.append(line);
    stream.push_back('\n');
  }
  return stream;
}

class ServeCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(ServeBinary())) {
      GTEST_SKIP() << "nocdr_serve not built at " << ServeBinary();
    }
    dir_ = fs::path(::testing::TempDir()) / "nocdr_serve_cli";
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(ServeCliTest, BadFlagExitsTwo) {
  EXPECT_EQ(RunShell(ServeBinary() + " --no-such-flag < /dev/null 2> " +
                     Path("err.txt")),
            2);
}

TEST_F(ServeCliTest, BadTraceSampleExitsTwo) {
  EXPECT_EQ(RunShell(ServeBinary() + " --trace-sample 0 < /dev/null 2> " +
                     Path("err.txt")),
            2);
  EXPECT_EQ(RunShell(ServeBinary() + " --trace-clock lunar < /dev/null 2> " +
                     Path("err.txt")),
            2);
}

TEST_F(ServeCliTest, UnusableCacheDirExitsTwo) {
  // --cache-dir pointing at a regular file is a deployment error: the
  // server must fail fast (exit 2), not serve cold.
  const std::string file = Path("not_a_dir");
  WriteFile(file, "occupied\n");
  EXPECT_EQ(RunShell(ServeBinary() + " --cache-dir " + file +
                     " < /dev/null 2> " + Path("err.txt")),
            2);
}

TEST_F(ServeCliTest, CleanEofExitsZero) {
  const std::string requests = Path("requests.jsonl");
  WriteFile(requests, RequestStream());
  EXPECT_EQ(RunShell(ServeBinary() + " < " + requests + " > " +
                     Path("out.jsonl") + " 2> " + Path("err.txt")),
            0);
}

TEST_F(ServeCliTest, VersionPrintsProvenanceAndExitsZero) {
  const std::string out = Path("version.txt");
  ASSERT_EQ(RunShell(ServeBinary() + " --version > " + out), 0);
  const std::string text = ReadFile(out);
  EXPECT_EQ(text.rfind("nocdr_serve ", 0), 0u) << text;
  EXPECT_NE(text.find("("), std::string::npos) << text;
}

TEST_F(ServeCliTest, TraceBytesIdenticalAcrossThreadCountsAndRuns) {
  const std::string requests = Path("requests.jsonl");
  WriteFile(requests, RequestStream());
  const auto run = [&](const std::string& trace, const std::string& threads) {
    return RunShell(ServeBinary() + " --threads " + threads +
                    " --trace-out " + trace + " < " + requests + " > " +
                    Path("out.jsonl") + " 2> " + Path("err.txt"));
  };
  ASSERT_EQ(run(Path("t1.jsonl"), "1"), 0);
  ASSERT_EQ(run(Path("t3.jsonl"), "3"), 0);
  ASSERT_EQ(run(Path("t3b.jsonl"), "3"), 0);
  const std::string bytes = ReadFile(Path("t1.jsonl"));
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, ReadFile(Path("t3.jsonl")));
  EXPECT_EQ(bytes, ReadFile(Path("t3b.jsonl")));

  if (!fs::exists(TraceBinary())) {
    GTEST_SKIP() << "nocdr_trace not built at " << TraceBinary();
  }
  // The analyzer validates the whole file (exit 0) and rejects a
  // corrupted span line (exit 1).
  EXPECT_EQ(RunShell(TraceBinary() + " --in " + Path("t1.jsonl") +
                     " --check > " + Path("check.txt")),
            0);
  WriteFile(Path("corrupt.jsonl"),
            bytes + "{\"trace\":\"zz\",\"span\":0,\"parent\":-1,"
                    "\"name\":\"r\",\"start\":9,\"end\":3}\n");
  EXPECT_EQ(RunShell(TraceBinary() + " --in " + Path("corrupt.jsonl") +
                     " --check 2> " + Path("err.txt")),
            1);
  EXPECT_EQ(RunShell(TraceBinary() + " --in " + Path("missing.jsonl") +
                     " --check 2> " + Path("err.txt")),
            2);
}

TEST_F(ServeCliTest, TraceSampleTracesEveryNthRequest) {
  const std::string requests = Path("requests.jsonl");
  WriteFile(requests, RequestStream());
  ASSERT_EQ(RunShell(ServeBinary() + " --trace-sample 4 --trace-out " +
                     Path("sampled.jsonl") + " < " + requests + " > " +
                     Path("out.jsonl") + " 2> " + Path("err.txt")),
            0);
  const std::string bytes = ReadFile(Path("sampled.jsonl"));
  // Stream indices 0 and 4 are sampled; computation traces (k...) are
  // always recorded.
  EXPECT_NE(bytes.find("\"trace\":\"q0\""), std::string::npos);
  EXPECT_EQ(bytes.find("\"trace\":\"q1\""), std::string::npos);
  EXPECT_NE(bytes.find("\"trace\":\"q4\""), std::string::npos);
  EXPECT_NE(bytes.find("\"trace\":\"k"), std::string::npos);
}

TEST_F(ServeCliTest, UnwritableTraceOutExitsTwo) {
  const std::string requests = Path("requests.jsonl");
  WriteFile(requests, RequestStream());
  EXPECT_EQ(RunShell(ServeBinary() + " --trace-out " +
                     Path("no_such_dir") + "/t.jsonl < " + requests + " > " +
                     Path("out.jsonl") + " 2> " + Path("err.txt")),
            2);
}

}  // namespace
}  // namespace nocdr
