// Unit and property tests for the deterministic PRNG.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace nocdr {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-0.5));
    EXPECT_TRUE(rng.NextBool(1.5));
  }
}

TEST(RngTest, NextBoolRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a(20), b(20);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(31), r2(31);
  r1.Shuffle(a);
  r2.Shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's.
  int equal = 0;
  Rng parent_copy(37);
  parent_copy.Next();  // align: Fork consumed one draw
  for (int i = 0; i < 50; ++i) {
    if (child.Next() == parent_copy.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, UniformCoverage) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 7919 + 1);
  std::vector<int> histogram(bound, 0);
  const int draws = static_cast<int>(bound) * 400;
  for (int i = 0; i < draws; ++i) {
    ++histogram[rng.NextBelow(bound)];
  }
  // Every bucket hit, and no bucket wildly off the mean.
  for (std::uint64_t b = 0; b < bound; ++b) {
    EXPECT_GT(histogram[b], 0) << "bucket " << b;
    EXPECT_LT(histogram[b], 400 * 3) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 64));

}  // namespace
}  // namespace nocdr
