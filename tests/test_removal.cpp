// Unit tests for Algorithm 1 (the removal loop).
#include "deadlock/removal.h"

#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(RemovalTest, PaperExampleNeedsExactlyOneVc) {
  auto ex = testing::MakePaperExample();
  const auto report = RemoveDeadlocks(ex.design);
  EXPECT_FALSE(report.initially_deadlock_free);
  EXPECT_EQ(report.iterations, 1u);
  EXPECT_EQ(report.vcs_added, 1u);
  EXPECT_EQ(ex.design.topology.ExtraVcCount(), 1u);
  EXPECT_TRUE(IsDeadlockFree(ex.design));
  ex.design.Validate();
}

TEST(RemovalTest, AcyclicInputIsNoOp) {
  auto ex = testing::MakePaperExample();
  // Shorten F3 so the ring does not close (cf. test_cycle).
  ex.design.routes.SetRoute(ex.f3, {ex.c4});
  ex.design.attachment[5] = SwitchId(0u);
  ex.design.Validate();
  const auto report = RemoveDeadlocks(ex.design);
  EXPECT_TRUE(report.initially_deadlock_free);
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_EQ(report.vcs_added, 0u);
  EXPECT_EQ(ex.design.topology.ExtraVcCount(), 0u);
}

TEST(RemovalTest, StepRecordsAreConsistent) {
  auto ex = testing::MakePaperExample();
  const auto report = RemoveDeadlocks(ex.design);
  ASSERT_EQ(report.steps.size(), report.iterations);
  std::size_t total = 0;
  for (const auto& step : report.steps) {
    EXPECT_EQ(step.cost, step.vcs_added);
    EXPECT_GE(step.cycle_length, 2u);
    total += step.vcs_added;
  }
  EXPECT_EQ(total, report.vcs_added);
}

TEST(RemovalTest, RingsOfAllSizes) {
  for (std::size_t n : {3u, 4u, 6u, 10u, 16u}) {
    auto d = testing::MakeRingDesign(n, 2);
    const auto report = RemoveDeadlocks(d);
    EXPECT_TRUE(IsDeadlockFree(d)) << "ring " << n;
    EXPECT_GT(report.vcs_added, 0u) << "ring " << n;
    d.Validate();
  }
}

TEST(RemovalTest, LongSpanRings) {
  // Longer worms wrap further around the ring; removal must still
  // converge and produce a valid deadlock-free design.
  for (std::size_t span : {2u, 3u, 4u, 5u}) {
    auto d = testing::MakeRingDesign(8, span);
    RemoveDeadlocks(d);
    EXPECT_TRUE(IsDeadlockFree(d)) << "span " << span;
    d.Validate();
  }
}

TEST(RemovalTest, IterationCapThrows) {
  auto d = testing::MakeRingDesign(8, 3);
  RemovalOptions options;
  options.max_iterations = 0;
  EXPECT_THROW(RemoveDeadlocks(d, options), AlgorithmLimitError);
}

TEST(RemovalTest, ParanoidValidationPasses) {
  auto d = testing::MakeRingDesign(10, 4);
  RemovalOptions options;
  options.paranoid_validation = true;
  EXPECT_NO_THROW(RemoveDeadlocks(d, options));
  EXPECT_TRUE(IsDeadlockFree(d));
}

TEST(RemovalTest, DirectionPolicies) {
  for (auto policy : {DirectionPolicy::kBoth, DirectionPolicy::kForwardOnly,
                      DirectionPolicy::kBackwardOnly}) {
    auto d = testing::MakeRingDesign(8, 3);
    RemovalOptions options;
    options.direction_policy = policy;
    const auto report = RemoveDeadlocks(d, options);
    EXPECT_TRUE(IsDeadlockFree(d));
    EXPECT_GT(report.vcs_added, 0u);
    d.Validate();
  }
}

TEST(RemovalTest, CyclePolicies) {
  for (auto policy : {CyclePolicy::kSmallestFirst, CyclePolicy::kFirstFound,
                      CyclePolicy::kLargestFirst}) {
    auto d = testing::MakeRingDesign(8, 3);
    RemovalOptions options;
    options.cycle_policy = policy;
    RemoveDeadlocks(d, options);
    EXPECT_TRUE(IsDeadlockFree(d));
    d.Validate();
  }
}

TEST(RemovalTest, BothDirectionsNeverWorseThanSingle) {
  // Evaluating both directions and taking the cheaper one cannot add
  // more VCs than the first break of either restricted policy...
  // globally the heuristic gives no guarantee, so compare totals on a
  // batch of random designs in aggregate instead.
  std::size_t both_total = 0, fwd_total = 0, bwd_total = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (auto [policy, total] :
         std::initializer_list<std::pair<DirectionPolicy, std::size_t*>>{
             {DirectionPolicy::kBoth, &both_total},
             {DirectionPolicy::kForwardOnly, &fwd_total},
             {DirectionPolicy::kBackwardOnly, &bwd_total}}) {
      auto d = testing::MakeRandomDesign(seed, 8, 14, 30);
      RemovalOptions options;
      options.direction_policy = policy;
      *total += RemoveDeadlocks(d, options).vcs_added;
    }
  }
  EXPECT_LE(both_total, fwd_total);
  EXPECT_LE(both_total, bwd_total);
}

TEST(RemovalTest, SummarizeMentionsCounts) {
  auto ex = testing::MakePaperExample();
  const auto report = RemoveDeadlocks(ex.design);
  const std::string s = Summarize(report);
  EXPECT_NE(s.find("1 cycle(s)"), std::string::npos);
  EXPECT_NE(s.find("1 VC(s)"), std::string::npos);

  auto ex2 = testing::MakePaperExample();
  ex2.design.routes.SetRoute(ex2.f3, {ex2.c4});
  ex2.design.attachment[5] = SwitchId(0u);
  const auto noop = RemoveDeadlocks(ex2.design);
  EXPECT_NE(Summarize(noop).find("already deadlock-free"),
            std::string::npos);
}

TEST(RemovalTest, IdempotentOnSecondRun) {
  auto d = testing::MakeRingDesign(8, 3);
  RemoveDeadlocks(d);
  const auto second = RemoveDeadlocks(d);
  EXPECT_TRUE(second.initially_deadlock_free);
  EXPECT_EQ(second.vcs_added, 0u);
}

}  // namespace
}  // namespace nocdr
