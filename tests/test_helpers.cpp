#include "test_helpers.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace nocdr::testing {

NocDesign MakeRandomDesign(std::uint64_t seed, std::size_t switches,
                           std::size_t cores, std::size_t flows) {
  Rng rng(seed);
  NocDesign d;
  d.name = "random" + std::to_string(seed);

  std::vector<SwitchId> sw;
  for (std::size_t i = 0; i < switches; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  // Bidirectional ring guarantees strong connectivity.
  for (std::size_t i = 0; i < switches; ++i) {
    d.topology.AddLink(sw[i], sw[(i + 1) % switches]);
    d.topology.AddLink(sw[(i + 1) % switches], sw[i]);
  }
  // Random chords make routing irregular.
  const std::size_t chords = switches / 2 + 1;
  for (std::size_t i = 0; i < chords; ++i) {
    const std::size_t a = rng.NextBelow(switches);
    const std::size_t b = rng.NextBelow(switches);
    if (a != b && !d.topology.FindLink(sw[a], sw[b])) {
      d.topology.AddLink(sw[a], sw[b]);
    }
  }

  std::vector<CoreId> core_ids;
  for (std::size_t i = 0; i < cores; ++i) {
    core_ids.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[rng.NextBelow(switches)]);
  }

  // BFS shortest path (hop count) per flow, deterministic tie-break by
  // link index.
  auto bfs_route = [&](SwitchId from, SwitchId to) {
    std::vector<LinkId> via(d.topology.SwitchCount());
    std::vector<bool> seen(d.topology.SwitchCount(), false);
    std::deque<SwitchId> queue{from};
    seen[from.value()] = true;
    while (!queue.empty()) {
      const SwitchId cur = queue.front();
      queue.pop_front();
      if (cur == to) {
        break;
      }
      for (LinkId l : d.topology.OutLinks(cur)) {
        const SwitchId next = d.topology.LinkAt(l).dst;
        if (!seen[next.value()]) {
          seen[next.value()] = true;
          via[next.value()] = l;
          queue.push_back(next);
        }
      }
    }
    Require(seen[to.value()], "MakeRandomDesign: disconnected");
    Route r;
    for (SwitchId cur = to; cur != from;
         cur = d.topology.LinkAt(via[cur.value()]).src) {
      r.push_back(*d.topology.FindChannel(via[cur.value()], 0));
    }
    std::reverse(r.begin(), r.end());
    return r;
  };

  std::size_t added = 0;
  while (added < flows) {
    const std::size_t a = rng.NextBelow(cores);
    const std::size_t b = rng.NextBelow(cores);
    if (a == b) {
      continue;
    }
    const FlowId f = d.traffic.AddFlow(
        core_ids[a], core_ids[b],
        static_cast<double>(rng.NextInRange(10, 200)));
    d.routes.Resize(d.traffic.FlowCount());
    const SwitchId from = d.attachment[a];
    const SwitchId to = d.attachment[b];
    d.routes.SetRoute(f, from == to ? Route{} : bfs_route(from, to));
    ++added;
  }
  d.Validate();
  return d;
}

}  // namespace nocdr::testing
