// The incremental-CDG contract: mutating one graph across breaks must be
// indistinguishable from rebuilding it from the design, and the
// dirty-vertex cycle search must select exactly what a full scan selects.
// These are the properties the incremental removal engine's correctness
// rests on, checked here across the whole regression corpus.
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "cdg/incremental.h"
#include "deadlock/breaker.h"
#include "deadlock/cost.h"
#include "deadlock/removal.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"
#include "util/error.h"

namespace nocdr {
namespace {

TEST(CdgIncrementalTest, AddEdgesCreatesDependencies) {
  auto ex = testing::MakePaperExample();
  ChannelDependencyGraph cdg;
  cdg.EnsureVertices(ex.design.topology.ChannelCount());
  EXPECT_EQ(cdg.EdgeCount(), 0u);
  cdg.AddEdges({ex.c1, ex.c2, ex.c3}, ex.f1);
  EXPECT_EQ(cdg.EdgeCount(), 2u);
  ASSERT_TRUE(cdg.FindEdge(ex.c1, ex.c2).has_value());
  ASSERT_TRUE(cdg.FindEdge(ex.c2, ex.c3).has_value());
  EXPECT_EQ(cdg.EdgeAt(*cdg.FindEdge(ex.c1, ex.c2)).flows,
            std::vector<FlowId>{ex.f1});

  // A second flow over the same pair annotates, not duplicates.
  cdg.AddEdges({ex.c1, ex.c2}, ex.f4);
  EXPECT_EQ(cdg.EdgeCount(), 2u);
  EXPECT_EQ(cdg.EdgeAt(*cdg.FindEdge(ex.c1, ex.c2)).flows,
            (std::vector<FlowId>{ex.f1, ex.f4}));
}

TEST(CdgIncrementalTest, RemoveEdgesDeletesWhenLastFlowLeaves) {
  auto ex = testing::MakePaperExample();
  ChannelDependencyGraph cdg;
  cdg.EnsureVertices(ex.design.topology.ChannelCount());
  cdg.AddEdges({ex.c1, ex.c2, ex.c3}, ex.f1);
  cdg.AddEdges({ex.c1, ex.c2}, ex.f4);

  cdg.RemoveEdges({ex.c1, ex.c2}, ex.f4);
  EXPECT_EQ(cdg.EdgeCount(), 2u);
  EXPECT_EQ(cdg.EdgeAt(*cdg.FindEdge(ex.c1, ex.c2)).flows,
            std::vector<FlowId>{ex.f1});

  cdg.RemoveEdges({ex.c1, ex.c2, ex.c3}, ex.f1);
  EXPECT_EQ(cdg.EdgeCount(), 0u);
  EXPECT_FALSE(cdg.FindEdge(ex.c1, ex.c2).has_value());
}

TEST(CdgIncrementalTest, RemoveEdgesThrowsWhenOutOfSync) {
  auto ex = testing::MakePaperExample();
  ChannelDependencyGraph cdg;
  cdg.EnsureVertices(ex.design.topology.ChannelCount());
  cdg.AddEdges({ex.c1, ex.c2}, ex.f1);
  EXPECT_THROW(cdg.RemoveEdges({ex.c2, ex.c3}, ex.f1), InvalidModelError);
  EXPECT_THROW(cdg.RemoveEdges({ex.c1, ex.c2}, ex.f2), InvalidModelError);
}

TEST(CdgIncrementalTest, SameDependenciesDetectsDifferences) {
  auto ex = testing::MakePaperExample();
  const auto built = ChannelDependencyGraph::Build(ex.design);
  auto copy = ChannelDependencyGraph::Build(ex.design);
  EXPECT_TRUE(built.SameDependencies(copy));
  copy.RemoveEdges({ex.c3, ex.c4}, ex.f2);
  EXPECT_FALSE(built.SameDependencies(copy));
}

// ------------------------------------------------------------------------
// Remove/re-add churn: the fault-reconfiguration pipeline drives
// RemoveEdges/AddEdges far outside the break discipline (arbitrary flow
// subsets, arbitrary re-add order, repeated rounds). A churned-then-
// restored graph must be bit-identical to a fresh Build — the canonical
// representation may not remember history.

void RunChurnProperty(const NocDesign& design, std::uint64_t seed) {
  auto cdg = ChannelDependencyGraph::Build(design);
  const auto reference = ChannelDependencyGraph::Build(design);
  Rng rng(seed);
  const std::size_t flows = design.traffic.FlowCount();

  for (int round = 0; round < 3; ++round) {
    std::vector<FlowId> victims;
    for (std::size_t f = 0; f < flows; ++f) {
      if (rng.NextBool(0.4)) {
        victims.push_back(FlowId(f));
      }
    }
    for (const FlowId f : victims) {
      cdg.RemoveEdges(design.routes.RouteOf(f), f);
    }
    rng.Shuffle(victims);  // restore in a different order
    for (const FlowId f : victims) {
      cdg.AddEdges(design.routes.RouteOf(f), f);
    }
    ASSERT_TRUE(cdg.SameDependencies(reference)) << "round " << round;
    ASSERT_TRUE(reference.SameDependencies(cdg)) << "round " << round;
  }

  // Full strip: every flow out (the graph must go empty), then all back
  // in reverse order.
  for (std::size_t f = 0; f < flows; ++f) {
    cdg.RemoveEdges(design.routes.RouteOf(FlowId(f)), FlowId(f));
  }
  ASSERT_EQ(cdg.EdgeCount(), 0u);
  for (std::size_t f = flows; f-- > 0;) {
    cdg.AddEdges(design.routes.RouteOf(FlowId(f)), FlowId(f));
  }
  ASSERT_TRUE(cdg.SameDependencies(reference));
}

TEST(CdgChurnTest, ChurnedGraphsMatchFreshBuildsAcrossCorpus) {
  for (const auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    for (std::size_t switches : {10u, 14u, 18u}) {
      SCOPED_TRACE(b.name + "@" + std::to_string(switches));
      RunChurnProperty(SynthesizeDesign(b.traffic, b.name, switches),
                       switches);
    }
  }
}

TEST(CdgChurnTest, ChurnedGraphsMatchOnTreatedDesigns) {
  // Post-removal designs have multi-VC routes — the representation the
  // fault pipeline actually churns.
  for (const auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    NocDesign design = SynthesizeDesign(b.traffic, b.name, 14);
    RemoveDeadlocks(design);
    SCOPED_TRACE(b.name);
    RunChurnProperty(design, 99);
  }
}

TEST(CdgChurnTest, ChurnedGraphsMatchOnRingsAndRandomDesigns) {
  RunChurnProperty(testing::MakeRingDesign(12, 5), 1);
  for (std::uint64_t seed = 51; seed <= 58; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunChurnProperty(testing::MakeRandomDesign(seed, 10, 14, 30), seed);
  }
}

// ------------------------------------------------------------------------
// The property at the heart of the incremental engine: after every break,
// (a) the mutated CDG equals a from-scratch rebuild, and (b) the dirty
// cycle finder picks exactly what a full scan picks.

void RunMirrorProperty(NocDesign design, CyclePolicy policy) {
  ChannelDependencyGraph cdg = ChannelDependencyGraph::Build(design);
  DirtyCycleFinder finder(cdg);
  std::size_t guard = 0;
  for (;;) {
    const auto full = PickCycle(cdg, policy);
    const auto dirty = finder.Pick(policy);
    ASSERT_EQ(dirty.has_value(), full.has_value());
    if (!dirty) {
      break;
    }
    ASSERT_EQ(*dirty, *full) << "dirty search diverged from full scan";

    const BreakCandidate fwd =
        FindDepToBreak(design, *dirty, BreakDirection::kForward);
    const BreakCandidate bwd =
        FindDepToBreak(design, *dirty, BreakDirection::kBackward);
    const BreakCandidate chosen = fwd.cost <= bwd.cost ? fwd : bwd;
    const BreakResult applied =
        BreakCycle(design, *dirty, chosen.edge_pos, chosen.direction);
    ASSERT_EQ(applied.rerouted_flows.size(), applied.old_routes.size());

    cdg.ApplyBreak(design, applied.rerouted_flows, applied.old_routes);
    const auto rebuilt = ChannelDependencyGraph::Build(design);
    ASSERT_TRUE(cdg.SameDependencies(rebuilt))
        << "incremental CDG diverged from rebuild";
    ASSERT_TRUE(rebuilt.SameDependencies(cdg));
    ASSERT_LT(++guard, 10000u) << "removal loop failed to converge";
  }
  EXPECT_TRUE(IsAcyclic(cdg));
}

TEST(CdgIncrementalTest, MirrorsRebuildOnRings) {
  for (auto [n, span] : {std::pair<std::size_t, std::size_t>{4, 2},
                         {6, 3},
                         {8, 3},
                         {12, 5}}) {
    RunMirrorProperty(testing::MakeRingDesign(n, span),
                      CyclePolicy::kSmallestFirst);
  }
}

TEST(CdgIncrementalTest, MirrorsRebuildOnBenchmarkCorpus) {
  for (const auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    for (std::size_t switches : {10u, 14u, 18u}) {
      SCOPED_TRACE(b.name + "@" + std::to_string(switches));
      RunMirrorProperty(SynthesizeDesign(b.traffic, b.name, switches),
                        CyclePolicy::kSmallestFirst);
    }
  }
}

TEST(CdgIncrementalTest, MirrorsRebuildOnRandomDesigns) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunMirrorProperty(testing::MakeRandomDesign(seed, 10, 14, 30),
                      CyclePolicy::kSmallestFirst);
  }
}

TEST(CdgIncrementalTest, MirrorsRebuildUnderAblationPolicies) {
  for (auto policy : {CyclePolicy::kFirstFound, CyclePolicy::kLargestFirst}) {
    RunMirrorProperty(testing::MakeRingDesign(8, 3), policy);
    const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
    RunMirrorProperty(SynthesizeDesign(b.traffic, b.name, 14), policy);
  }
}

// ------------------------------------------------------------------------
// End-to-end: both removal engines must produce identical reports and
// identical final designs.

void ExpectSameOutcome(const NocDesign& input) {
  NocDesign incremental_design = input;
  NocDesign rebuild_design = input;
  RemovalOptions options;
  options.engine = RemovalEngine::kIncremental;
  const auto incremental = RemoveDeadlocks(incremental_design, options);
  options.engine = RemovalEngine::kRebuild;
  const auto rebuild = RemoveDeadlocks(rebuild_design, options);

  EXPECT_EQ(incremental.initially_deadlock_free,
            rebuild.initially_deadlock_free);
  EXPECT_EQ(incremental.iterations, rebuild.iterations);
  EXPECT_EQ(incremental.vcs_added, rebuild.vcs_added);
  EXPECT_EQ(incremental.flows_rerouted, rebuild.flows_rerouted);
  ASSERT_EQ(incremental.steps.size(), rebuild.steps.size());
  for (std::size_t i = 0; i < incremental.steps.size(); ++i) {
    EXPECT_EQ(incremental.steps[i].cycle_length,
              rebuild.steps[i].cycle_length);
    EXPECT_EQ(incremental.steps[i].direction, rebuild.steps[i].direction);
    EXPECT_EQ(incremental.steps[i].edge_pos, rebuild.steps[i].edge_pos);
    EXPECT_EQ(incremental.steps[i].cost, rebuild.steps[i].cost);
  }
  EXPECT_EQ(incremental_design.topology.ChannelCount(),
            rebuild_design.topology.ChannelCount());
  EXPECT_EQ(incremental_design.topology.LinkCount(),
            rebuild_design.topology.LinkCount());
  for (std::size_t f = 0; f < input.traffic.FlowCount(); ++f) {
    ASSERT_EQ(incremental_design.routes.RouteOf(FlowId(f)),
              rebuild_design.routes.RouteOf(FlowId(f)))
        << "flow " << f;
  }
  EXPECT_TRUE(IsDeadlockFree(incremental_design));
}

TEST(RemovalEngineEquivalenceTest, BenchmarkCorpus) {
  for (const auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    for (std::size_t switches : {10u, 18u}) {
      SCOPED_TRACE(b.name + "@" + std::to_string(switches));
      ExpectSameOutcome(SynthesizeDesign(b.traffic, b.name, switches));
    }
  }
}

TEST(RemovalEngineEquivalenceTest, RingsAndRandomDesigns) {
  ExpectSameOutcome(testing::MakeRingDesign(10, 4));
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectSameOutcome(testing::MakeRandomDesign(seed, 9, 12, 24));
  }
}

TEST(RemovalEngineEquivalenceTest, ParanoidValidationPasses) {
  NocDesign design = testing::MakeRingDesign(8, 3);
  RemovalOptions options;
  options.paranoid_validation = true;
  const auto report = RemoveDeadlocks(design, options);
  EXPECT_GT(report.iterations, 0u);
  EXPECT_TRUE(IsDeadlockFree(design));
}

TEST(RemovalEngineEquivalenceTest, PhysicalLinkModeMatchesToo) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_6);
  const auto input = SynthesizeDesign(b.traffic, b.name, 14);
  NocDesign a = input;
  NocDesign c = input;
  RemovalOptions options;
  options.duplication = DuplicationMode::kPhysicalLink;
  options.engine = RemovalEngine::kIncremental;
  const auto ra = RemoveDeadlocks(a, options);
  options.engine = RemovalEngine::kRebuild;
  const auto rc = RemoveDeadlocks(c, options);
  EXPECT_EQ(ra.vcs_added, rc.vcs_added);
  EXPECT_EQ(ra.iterations, rc.iterations);
  EXPECT_TRUE(IsDeadlockFree(a));
}

}  // namespace
}  // namespace nocdr
