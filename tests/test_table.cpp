// Unit tests for the table renderer.
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nocdr {
namespace {

TEST(TextTableTest, AlignedRendering) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTableTest, RowCount) {
  TextTable t;
  EXPECT_EQ(t.RowCount(), 0u);
  t.AddRow({"x"});
  t.AddRow({"y"});
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TextTableTest, RaggedRowsArePadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTableTest, CsvBasic) {
  TextTable t;
  t.SetHeader({"x", "y"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t;
  t.AddRow({"a,b", "say \"hi\"", "multi\nline"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
}

TEST(TextTableTest, NoHeaderNoSeparator) {
  TextTable t;
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str().find("---"), std::string::npos);
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace nocdr
