// Unit tests for the physical-link duplication mode (the paper: "it is
// also possible to add physical channels if the NoC architecture does
// not support VCs").
#include <gtest/gtest.h>

#include "deadlock/breaker.h"
#include "deadlock/removal.h"
#include "sim/simulator.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(DuplicationModeTest, PhysicalBreakAddsParallelLink) {
  auto ex = testing::MakePaperExample();
  const std::size_t links_before = ex.design.topology.LinkCount();
  const CdgCycle cycle = {ex.c1, ex.c2, ex.c3, ex.c4};
  const auto result = BreakCycle(ex.design, cycle, 0,
                                 BreakDirection::kForward,
                                 DuplicationMode::kPhysicalLink);
  ASSERT_EQ(result.added_channels.size(), 1u);
  EXPECT_EQ(ex.design.topology.LinkCount(), links_before + 1);
  // Every link still has exactly one VC.
  for (std::size_t l = 0; l < ex.design.topology.LinkCount(); ++l) {
    EXPECT_EQ(ex.design.topology.VcCount(LinkId(l)), 1u);
  }
  // The twin link connects the same switch pair as L1.
  const Channel& fresh = ex.design.topology.ChannelAt(result.added_channels[0]);
  const Link& twin = ex.design.topology.LinkAt(fresh.link);
  const Link& original = ex.design.topology.LinkAt(ex.l1);
  EXPECT_EQ(twin.src, original.src);
  EXPECT_EQ(twin.dst, original.dst);
  ex.design.Validate();
  EXPECT_TRUE(IsDeadlockFree(ex.design));
}

TEST(DuplicationModeTest, FullRemovalInPhysicalMode) {
  auto ex = testing::MakePaperExample();
  RemovalOptions options;
  options.duplication = DuplicationMode::kPhysicalLink;
  const auto report = RemoveDeadlocks(ex.design, options);
  EXPECT_EQ(report.vcs_added, 1u);  // one duplicated channel either way
  EXPECT_EQ(ex.design.topology.ExtraVcCount(), 0u);  // but zero extra VCs
  EXPECT_EQ(ex.design.topology.LinkCount(), 5u);     // one extra link
  EXPECT_TRUE(IsDeadlockFree(ex.design));
}

TEST(DuplicationModeTest, BothModesAddSameChannelCount) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto vc_design = testing::MakeRandomDesign(seed);
    auto phys_design = vc_design;
    RemovalOptions vc_options;
    RemovalOptions phys_options;
    phys_options.duplication = DuplicationMode::kPhysicalLink;
    const auto vc_report = RemoveDeadlocks(vc_design, vc_options);
    const auto phys_report = RemoveDeadlocks(phys_design, phys_options);
    // The algorithm's decisions depend only on the CDG shape, which is
    // identical in both modes.
    EXPECT_EQ(vc_report.vcs_added, phys_report.vcs_added) << seed;
    EXPECT_TRUE(IsDeadlockFree(phys_design)) << seed;
    phys_design.Validate();
  }
}

TEST(DuplicationModeTest, PhysicalModeSurvivesStressSimulation) {
  auto d = testing::MakeRingDesign(4, 2);
  RemovalOptions options;
  options.duplication = DuplicationMode::kPhysicalLink;
  RemoveDeadlocks(d, options);
  SimConfig cfg;
  cfg.traffic.packets_per_flow = 8;
  cfg.traffic.packet_length = 12;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 100000;
  cfg.stall_threshold = 1000;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(result.AllDelivered());
}

TEST(DuplicationModeTest, PhysicalTwinsCarryIndependentTraffic) {
  // After a physical-mode break the twin and the original link can move
  // one flit each in the same cycle (they are separate wires), unlike
  // two VCs multiplexed on one link. Completing strictly faster than the
  // flit count over a single link proves the parallelism.
  auto d = testing::MakeRingDesign(4, 2);
  RemovalOptions options;
  options.duplication = DuplicationMode::kPhysicalLink;
  RemoveDeadlocks(d, options);
  SimConfig cfg;
  cfg.traffic.packets_per_flow = 20;
  cfg.traffic.packet_length = 4;
  cfg.max_cycles = 100000;
  const auto result = SimulateWorkload(d, cfg);
  EXPECT_TRUE(result.AllDelivered());
}

}  // namespace
}  // namespace nocdr
