// Protocol v2 streaming sessions: codec round trips, structured-error
// rejection, session lifecycle, epoch monotonicity and the
// epoch-versioned cert-cache interaction (serve/session,
// serve/protocol, valid/session_campaign).
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "deadlock/verify.h"
#include "gen/generators.h"
#include "noc/io.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "test_helpers.h"
#include "util/canonical.h"
#include "util/error.h"
#include "valid/session_campaign.h"

namespace nocdr {
namespace {

using serve::CacheOutcome;
using serve::CertificationService;
using serve::CertRequest;
using serve::CertResponse;
using serve::ErrorCode;
using serve::RequestKind;
using serve::ServeStatus;
using serve::ServiceConfig;
using serve::SessionEventSpec;
using serve::SessionOp;
using serve::SessionRequest;
using serve::SessionResponse;
using serve::SessionService;
using serve::SessionServiceConfig;
using testing::MakeRingDesign;

NocDesign Reparse(const std::string& text) {
  std::istringstream stream(text);
  return ReadDesign(stream);
}

/// A fresh single-threaded service pair for deterministic tests.
struct Stack {
  Stack() : Stack(SessionServiceConfig{}) {}
  explicit Stack(SessionServiceConfig session_config)
      : service(MakeConfig()), sessions(service, session_config) {}

  static ServiceConfig MakeConfig() {
    ServiceConfig config;
    config.threads = 1;
    return config;
  }

  CertificationService service;
  SessionService sessions;
};

SessionRequest OpenText(const NocDesign& design) {
  SessionRequest request;
  request.op = SessionOp::kOpen;
  request.id = "open";
  request.spec.kind = RequestKind::kDesignText;
  request.spec.design_text = DesignText(design);
  request.return_design = true;
  return request;
}

/// A link event naming \p link by its endpoint switch names.
SessionEventSpec LinkEvent(const NocDesign& design, LinkId link) {
  const Link& l = design.topology.LinkAt(link);
  SessionEventSpec spec;
  spec.kind = fault::FaultKind::kLink;
  spec.src = design.topology.SwitchName(l.src);
  spec.dst = design.topology.SwitchName(l.dst);
  return spec;
}

SessionRequest BurstOn(const std::string& session_id,
                       std::vector<SessionEventSpec> events,
                       std::uint64_t expect_epoch) {
  SessionRequest request;
  request.op = SessionOp::kBurst;
  request.id = "burst";
  request.session_id = session_id;
  request.events = std::move(events);
  request.has_expect_epoch = true;
  request.expect_epoch = expect_epoch;
  return request;
}

SessionRequest SnapshotOf(const std::string& session_id) {
  SessionRequest request;
  request.op = SessionOp::kSnapshot;
  request.id = "snap";
  request.session_id = session_id;
  return request;
}

SessionRequest CloseOf(const std::string& session_id) {
  SessionRequest request;
  request.op = SessionOp::kClose;
  request.id = "close";
  request.session_id = session_id;
  return request;
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

void ExpectRoundTrip(const SessionRequest& request) {
  const std::string line = serve::SessionRequestToJsonLine(request);
  const serve::ServeMessage message = serve::ParseMessageLine(line);
  ASSERT_TRUE(message.is_session);
  EXPECT_EQ(serve::SessionRequestToJsonLine(message.session), line);
}

TEST(SessionProtocolTest, AllMessageTypesRoundTrip) {
  SessionRequest open;
  open.op = SessionOp::kOpen;
  open.id = "o1";
  open.spec.kind = RequestKind::kGeneratorSpec;
  open.spec.generator.family = gen::TopologyFamily::kTorus2D;
  open.spec.generator.width = 4;
  open.spec.generator.height = 4;
  open.return_design = true;
  ExpectRoundTrip(open);

  SessionRequest open_seed;
  open_seed.op = SessionOp::kOpen;
  open_seed.spec.kind = RequestKind::kSourceSeed;
  open_seed.spec.source = valid::DesignSource::kMesh;
  open_seed.spec.seed = 42;
  ExpectRoundTrip(open_seed);

  SessionEventSpec link;
  link.kind = fault::FaultKind::kLink;
  link.src = "t0_0";
  link.dst = "t1_0";
  SessionEventSpec dead_switch;
  dead_switch.kind = fault::FaultKind::kSwitch;
  dead_switch.switch_name = "t2_2";

  SessionRequest burst = BurstOn("s1", {link, dead_switch}, 3);
  burst.return_design = true;
  ExpectRoundTrip(burst);
  SessionRequest no_epoch = BurstOn("s1", {link}, 0);
  no_epoch.has_expect_epoch = false;
  ExpectRoundTrip(no_epoch);

  ExpectRoundTrip(SnapshotOf("s9"));
  ExpectRoundTrip(CloseOf("s9"));
}

TEST(SessionProtocolTest, V1LinesStillParseAsStatelessCertify) {
  const serve::ServeMessage message = serve::ParseMessageLine(
      R"({"id":"r1","source":"mesh","seed":5})");
  EXPECT_FALSE(message.is_session);
  EXPECT_EQ(message.certify.protocol_version, serve::kProtocolV1);
  EXPECT_EQ(message.certify.id, "r1");
}

void ExpectProtocolError(const std::string& line, ErrorCode code) {
  try {
    (void)serve::ParseMessageLine(line);
    FAIL() << "line parsed but should have been rejected: " << line;
  } catch (const serve::ProtocolError& e) {
    EXPECT_EQ(e.code(), code) << line;
  }
}

TEST(SessionProtocolTest, RejectsUnknownVersionsTypesAndMalformedFields) {
  // A version this server does not speak, on either message shape.
  ExpectProtocolError(R"({"protocol_version":3,"source":"mesh","seed":1})",
                      ErrorCode::kUnsupportedVersion);
  ExpectProtocolError(R"({"protocol_version":0,"type":"session_open"})",
                      ErrorCode::kUnsupportedVersion);
  // v2 message types the server does not know.
  ExpectProtocolError(R"({"protocol_version":2,"type":"session_reopen"})",
                      ErrorCode::kUnknownType);
  // Typed messages require v2: "type" on a v1 line is malformed.
  ExpectProtocolError(R"({"type":"session_open","source":"mesh","seed":1})",
                      ErrorCode::kInvalidRequest);
  // Session ops without a session id.
  ExpectProtocolError(R"({"protocol_version":2,"type":"fault_burst"})",
                      ErrorCode::kInvalidRequest);
  // Burst events with an unknown kind / missing fields.
  ExpectProtocolError(
      R"({"protocol_version":2,"type":"fault_burst","session":"s1",)"
      R"("events":[{"kind":"router","name":"x"}]})",
      ErrorCode::kInvalidRequest);
  ExpectProtocolError(
      R"({"protocol_version":2,"type":"fault_burst","session":"s1",)"
      R"("events":[{"kind":"link","src":"a"}]})",
      ErrorCode::kInvalidRequest);
  // Open without exactly one design spec.
  ExpectProtocolError(R"({"protocol_version":2,"type":"session_open"})",
                      ErrorCode::kInvalidRequest);
  // Not JSON at all.
  ExpectProtocolError("not json", ErrorCode::kInvalidRequest);
}

TEST(SessionProtocolTest, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kNone, ErrorCode::kInvalidRequest,
        ErrorCode::kUnsupportedVersion, ErrorCode::kUnknownType,
        ErrorCode::kUnknownSession, ErrorCode::kStaleEpoch,
        ErrorCode::kSessionLimit, ErrorCode::kOverloaded,
        ErrorCode::kComputeFailed, ErrorCode::kInternal}) {
    EXPECT_EQ(serve::ParseErrorCode(serve::ErrorCodeName(code)), code);
  }
}

TEST(SessionProtocolTest, DispatcherAnswersMalformedLinesWithStructuredErrors) {
  Stack stack;
  serve::ServeDispatcher dispatcher(stack.service, stack.sessions);
  const std::string reply = dispatcher.HandleLine(
      R"({"protocol_version":2,"type":"session_reopen","id":"x9"})");
  EXPECT_NE(reply.find("\"error\""), std::string::npos);
  EXPECT_NE(reply.find("unknown_type"), std::string::npos);
  EXPECT_NE(reply.find("\"x9\""), std::string::npos);
}

// ---------------------------------------------------------------------
// MaterializeDesign — the one entry point sessions and stateless
// serves share.
// ---------------------------------------------------------------------

TEST(MaterializeDesignTest, AllThreeSpecKindsMaterialize) {
  const valid::DesignEnvelope envelope;
  serve::DesignSpec text_spec;
  text_spec.kind = RequestKind::kDesignText;
  text_spec.design_text = DesignText(MakeRingDesign(6));
  const NocDesign from_text =
      serve::MaterializeDesign(text_spec, envelope);
  EXPECT_EQ(from_text.topology.SwitchCount(), 6u);

  serve::DesignSpec gen_spec;
  gen_spec.kind = RequestKind::kGeneratorSpec;
  gen_spec.generator.family = gen::TopologyFamily::kMesh2D;
  gen_spec.generator.width = 3;
  gen_spec.generator.height = 3;
  NextHopTable table;
  const NocDesign from_gen =
      serve::MaterializeDesign(gen_spec, envelope, &table);
  EXPECT_EQ(from_gen.topology.SwitchCount(), 9u);
  EXPECT_FALSE(table.empty());

  serve::DesignSpec seed_spec;
  seed_spec.kind = RequestKind::kSourceSeed;
  seed_spec.source = valid::DesignSource::kRing;
  seed_spec.seed = 11;
  const NocDesign from_seed =
      serve::MaterializeDesign(seed_spec, envelope, &table);
  EXPECT_GT(from_seed.topology.SwitchCount(), 0u);

  serve::DesignSpec bad;
  bad.kind = RequestKind::kDesignText;
  bad.design_text = "not a design";
  EXPECT_THROW((void)serve::MaterializeDesign(bad, envelope),
               DesignParseError);
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

TEST(SessionServiceTest, OpenBurstSnapshotCloseLifecycle) {
  Stack stack;
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kMesh2D;
  spec.width = 4;
  spec.height = 4;
  SessionRequest open_request;
  open_request.op = SessionOp::kOpen;
  open_request.spec.kind = RequestKind::kGeneratorSpec;
  open_request.spec.generator = spec;
  open_request.return_design = true;

  const SessionResponse open = stack.sessions.Handle(open_request);
  ASSERT_EQ(open.status, ServeStatus::kOk) << open.error.message;
  EXPECT_EQ(open.session_id, "s1");
  EXPECT_EQ(open.epoch, 0u);
  EXPECT_TRUE(open.deadlock_free);
  ASSERT_FALSE(open.design_text.empty());

  // Two bursts: the epoch advances by exactly one each, the key moves,
  // and every epoch's certificate checks against its design.
  const NocDesign epoch0 = Reparse(open.design_text);
  std::uint64_t epoch = 0;
  std::uint64_t last_key = open.key;
  for (const std::size_t link : {std::size_t{0}, std::size_t{5}}) {
    const SessionResponse reply = stack.sessions.Handle(BurstOn(
        open.session_id, {LinkEvent(epoch0, LinkId(link))}, epoch));
    ASSERT_EQ(reply.status, ServeStatus::kOk) << reply.error.message;
    ASSERT_TRUE(reply.feasible);
    ++epoch;
    EXPECT_EQ(reply.epoch, epoch);
    EXPECT_NE(reply.key, last_key);
    EXPECT_TRUE(reply.deadlock_free);
    last_key = reply.key;
  }

  const SessionResponse snapshot =
      stack.sessions.Handle(SnapshotOf(open.session_id));
  ASSERT_EQ(snapshot.status, ServeStatus::kOk);
  EXPECT_EQ(snapshot.epoch, epoch);
  EXPECT_EQ(snapshot.key, last_key);
  EXPECT_EQ(snapshot.failed_links, 2u);
  EXPECT_EQ(snapshot.bursts_applied, 2u);
  ASSERT_FALSE(snapshot.design_text.empty());
  const DeadlockCertificate certificate =
      CertificateFromJson(snapshot.certificate_json);
  EXPECT_TRUE(CheckCertificate(
      CanonicalizeDesign(Reparse(snapshot.design_text)).design,
      certificate));

  const SessionResponse closed =
      stack.sessions.Handle(CloseOf(open.session_id));
  EXPECT_EQ(closed.status, ServeStatus::kOk);
  EXPECT_EQ(closed.bursts_applied, 2u);

  const serve::SessionServiceStats stats = stack.sessions.Stats();
  EXPECT_EQ(stats.opened, 1u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.live_sessions, 0u);
  EXPECT_EQ(stats.bursts_applied, 2u);
}

TEST(SessionServiceTest, LifecycleViolationsAreStructuredErrors) {
  Stack stack;
  const SessionResponse ghost =
      stack.sessions.Handle(SnapshotOf("s404"));
  EXPECT_EQ(ghost.status, ServeStatus::kError);
  EXPECT_EQ(ghost.error.code, ErrorCode::kUnknownSession);

  const SessionResponse open =
      stack.sessions.Handle(OpenText(MakeRingDesign(8)));
  ASSERT_EQ(open.status, ServeStatus::kOk) << open.error.message;
  const NocDesign design = Reparse(open.design_text);

  // Empty burst.
  const SessionResponse empty =
      stack.sessions.Handle(BurstOn(open.session_id, {}, 0));
  EXPECT_EQ(empty.status, ServeStatus::kError);
  EXPECT_EQ(empty.error.code, ErrorCode::kInvalidRequest);

  // Unknown switch names resolve to nothing; the burst is rejected
  // atomically before any state changes.
  SessionEventSpec bogus;
  bogus.kind = fault::FaultKind::kSwitch;
  bogus.switch_name = "no_such_switch";
  const SessionResponse unresolved =
      stack.sessions.Handle(BurstOn(open.session_id, {bogus}, 0));
  EXPECT_EQ(unresolved.status, ServeStatus::kError);
  EXPECT_EQ(unresolved.error.code, ErrorCode::kInvalidRequest);

  // Stale optimistic-concurrency epoch; the error echoes the actual
  // epoch so clients can resync.
  const SessionResponse stale = stack.sessions.Handle(
      BurstOn(open.session_id, {LinkEvent(design, LinkId(0))}, 7));
  EXPECT_EQ(stale.status, ServeStatus::kError);
  EXPECT_EQ(stale.error.code, ErrorCode::kStaleEpoch);
  EXPECT_EQ(stale.epoch, 0u);

  // The session is unharmed by any of the above.
  const SessionResponse snapshot =
      stack.sessions.Handle(SnapshotOf(open.session_id));
  ASSERT_EQ(snapshot.status, ServeStatus::kOk);
  EXPECT_EQ(snapshot.epoch, 0u);
  EXPECT_EQ(snapshot.failed_links, 0u);

  // Close, then everything on the dead session is unknown_session.
  EXPECT_EQ(stack.sessions.Handle(CloseOf(open.session_id)).status,
            ServeStatus::kOk);
  EXPECT_EQ(stack.sessions.Handle(CloseOf(open.session_id)).error.code,
            ErrorCode::kUnknownSession);
  EXPECT_EQ(stack.sessions.Handle(SnapshotOf(open.session_id)).error.code,
            ErrorCode::kUnknownSession);
  EXPECT_EQ(stack.sessions
                .Handle(BurstOn(open.session_id,
                                {LinkEvent(design, LinkId(0))}, 0))
                .error.code,
            ErrorCode::kUnknownSession);
}

TEST(SessionServiceTest, SessionLimitBoundsOpensUntilAClose) {
  SessionServiceConfig config;
  config.max_sessions = 1;
  Stack stack(config);
  const NocDesign design = MakeRingDesign(6);
  const SessionResponse first = stack.sessions.Handle(OpenText(design));
  ASSERT_EQ(first.status, ServeStatus::kOk);

  const SessionResponse rejected = stack.sessions.Handle(OpenText(design));
  EXPECT_EQ(rejected.status, ServeStatus::kError);
  EXPECT_EQ(rejected.error.code, ErrorCode::kSessionLimit);
  EXPECT_EQ(stack.sessions.Stats().open_rejected, 1u);

  EXPECT_EQ(stack.sessions.Handle(CloseOf(first.session_id)).status,
            ServeStatus::kOk);
  EXPECT_EQ(stack.sessions.Handle(OpenText(design)).status,
            ServeStatus::kOk);
}

// ---------------------------------------------------------------------
// Epochs and the cert cache
// ---------------------------------------------------------------------

TEST(SessionServiceTest, InfeasibleBurstIsAnAnswerNotAnEpoch) {
  Stack stack;
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kMesh2D;
  spec.width = 3;
  spec.height = 3;
  SessionRequest open_request;
  open_request.op = SessionOp::kOpen;
  open_request.spec.kind = RequestKind::kGeneratorSpec;
  open_request.spec.generator = spec;
  open_request.return_design = true;
  const SessionResponse open = stack.sessions.Handle(open_request);
  ASSERT_EQ(open.status, ServeStatus::kOk) << open.error.message;
  const NocDesign design = Reparse(open.design_text);

  // Kill a switch with cores attached: its flows cannot re-route, so
  // the burst must be rejected atomically with named witnesses.
  SessionEventSpec kill;
  kill.kind = fault::FaultKind::kSwitch;
  kill.switch_name = design.topology.SwitchName(design.attachment.front());
  const SessionResponse reply =
      stack.sessions.Handle(BurstOn(open.session_id, {kill}, 0));
  ASSERT_EQ(reply.status, ServeStatus::kOk) << reply.error.message;
  EXPECT_FALSE(reply.feasible);
  EXPECT_FALSE(reply.disconnected_flows.empty());
  EXPECT_EQ(reply.epoch, 0u);
  EXPECT_EQ(reply.key, open.key);
  EXPECT_EQ(reply.certificate_json, open.certificate_json);

  // Nothing changed: the session still answers epoch-0 state and a
  // feasible burst still applies afterwards.
  const SessionResponse snapshot =
      stack.sessions.Handle(SnapshotOf(open.session_id));
  EXPECT_EQ(snapshot.epoch, 0u);
  EXPECT_EQ(snapshot.failed_switches, 0u);
  EXPECT_EQ(stack.sessions.Stats().bursts_infeasible, 1u);
}

TEST(SessionServiceTest, EveryEpochIsServableAndNeverStale) {
  Stack stack;
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kMesh2D;
  spec.width = 4;
  spec.height = 4;
  const SessionResponse open =
      stack.sessions.Handle(OpenText(gen::GenerateStandardDesign(spec)));
  ASSERT_EQ(open.status, ServeStatus::kOk) << open.error.message;
  const NocDesign epoch0 = Reparse(open.design_text);

  SessionRequest burst =
      BurstOn(open.session_id, {LinkEvent(epoch0, LinkId(0))}, 0);
  burst.return_design = true;
  const SessionResponse reply = stack.sessions.Handle(burst);
  ASSERT_EQ(reply.status, ServeStatus::kOk) << reply.error.message;
  ASSERT_TRUE(reply.feasible);
  ASSERT_NE(reply.key, open.key);

  // The current epoch's design serves as a cache hit with the
  // session's exact certificate...
  CertRequest current;
  current.kind = RequestKind::kDesignText;
  current.design_text = reply.design_text;
  const CertResponse warm = stack.service.Serve(current);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_EQ(warm.cache_outcome, CacheOutcome::kHit);
  EXPECT_EQ(warm.key, reply.key);
  EXPECT_EQ(warm.certificate_json, reply.certificate_json);

  // ...and the *old* epoch's design still serves its *old* certificate
  // — content addressing means a stale certificate can never shadow a
  // fresh one (or vice versa); they are different keys.
  CertRequest old;
  old.kind = RequestKind::kDesignText;
  old.design_text = open.design_text;
  const CertResponse old_reply = stack.service.Serve(old);
  ASSERT_EQ(old_reply.status, ServeStatus::kOk);
  EXPECT_EQ(old_reply.key, open.key);
  EXPECT_EQ(old_reply.certificate_json, open.certificate_json);
  EXPECT_NE(old_reply.key, warm.key);
}

// ---------------------------------------------------------------------
// Determinism and the differential campaign
// ---------------------------------------------------------------------

TEST(SessionServiceTest, ResponseDigestIsReproducible) {
  std::vector<std::uint64_t> digests;
  for (int run = 0; run < 2; ++run) {
    Stack stack;
    std::vector<SessionResponse> responses;
    const SessionResponse open =
        stack.sessions.Handle(OpenText(MakeRingDesign(8)));
    responses.push_back(open);
    const NocDesign design = Reparse(open.design_text);
    responses.push_back(stack.sessions.Handle(
        BurstOn(open.session_id, {LinkEvent(design, LinkId(2))}, 0)));
    responses.push_back(stack.sessions.Handle(SnapshotOf(open.session_id)));
    responses.push_back(stack.sessions.Handle(CloseOf(open.session_id)));
    digests.push_back(serve::SessionResponseDigest(responses));
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(SessionCampaignTest, SmallCampaignHasNoMismatchesAndStableDigest) {
  valid::SessionCampaignConfig config;
  config.trials = 10;
  config.base_seed = 11;
  config.threads = 2;
  const valid::SessionCampaignResult result =
      valid::RunSessionCampaign(config);
  EXPECT_EQ(result.mismatches, 0u)
      << result.rows.front().mismatch;
  for (const valid::SessionTrialRow& row : result.rows) {
    EXPECT_NE(row.verdict, valid::SessionVerdict::kMismatch)
        << "trial " << row.trial_index << ": " << row.mismatch;
  }

  valid::SessionCampaignConfig serial = config;
  serial.threads = 1;
  EXPECT_EQ(valid::RunSessionCampaign(serial).digest, result.digest);
}

}  // namespace
}  // namespace nocdr
