// End-to-end reproduction of the paper's worked example (Section 3,
// Figures 1-7 and Table 1): build the Figure 1 ring, recover the Figure 2
// CDG, reproduce Table 1, run the full algorithm, and arrive at a
// modified topology equivalent to Figure 4 (one extra VC, acyclic CDG).
#include <gtest/gtest.h>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/cost.h"
#include "deadlock/removal.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

TEST(PaperExampleTest, Figure2CdgIsTheRingCycle) {
  auto ex = testing::MakePaperExample();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  ASSERT_EQ(cdg.EdgeCount(), 4u);
  const auto cycle = SmallestCycle(cdg);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);
}

TEST(PaperExampleTest, Table1Reproduction) {
  auto ex = testing::MakePaperExample();
  const CdgCycle cycle = {ex.c1, ex.c2, ex.c3, ex.c4};
  const auto table =
      ComputeCycleCostTable(ex.design, cycle, BreakDirection::kForward);
  // Table 1 of the paper, row by row (0 = flow does not create the
  // dependency):          D1 D2 D3 D4
  //                  F1 |  1  2  0  0
  //                  F2 |  0  0  1  0
  //                  F3 |  0  0  0  1
  //                  F4 |  1  0  0  0
  //                 MAX |  1  2  1  1
  const std::vector<std::vector<std::size_t>> expected = {
      {1, 2, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {1, 0, 0, 0}};
  ASSERT_EQ(table.cost.size(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(table.cost[r], expected[r]) << "row F" << r + 1;
  }
  EXPECT_EQ(table.combined, (std::vector<std::size_t>{1, 2, 1, 1}));
}

TEST(PaperExampleTest, AlgorithmAddsOneVcAndEndsAcyclic) {
  auto ex = testing::MakePaperExample();
  const std::size_t channels_before = ex.design.topology.ChannelCount();
  const auto report = RemoveDeadlocks(ex.design);

  // |L'| - |L| = 1: the paper's Figure 4 solution also costs exactly one
  // new channel (an L1' VC).
  EXPECT_EQ(report.vcs_added, 1u);
  EXPECT_EQ(ex.design.topology.ChannelCount(), channels_before + 1);
  EXPECT_TRUE(IsDeadlockFree(ex.design));

  // The new channel is a second VC on some physical link of the ring.
  const ChannelId fresh(static_cast<std::uint32_t>(channels_before));
  EXPECT_EQ(ex.design.topology.ChannelAt(fresh).vc, 1u);
}

TEST(PaperExampleTest, ModifiedTopologyStillServesAllFlows) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  ex.design.Validate();  // endpoints and contiguity all intact
  // Each flow still follows the same physical links as in Figure 1.
  const std::vector<std::vector<LinkId>> expected_links = {
      {ex.l1, ex.l2, ex.l3}, {ex.l3, ex.l4}, {ex.l4, ex.l1}, {ex.l1, ex.l2}};
  for (std::size_t fi = 0; fi < 4; ++fi) {
    const Route& route = ex.design.routes.RouteOf(FlowId(fi));
    ASSERT_EQ(route.size(), expected_links[fi].size());
    for (std::size_t h = 0; h < route.size(); ++h) {
      EXPECT_EQ(ex.design.topology.ChannelAt(route[h]).link,
                expected_links[fi][h]);
    }
  }
}

TEST(PaperExampleTest, Figure7Scenario_NaiveSingleDuplicationInsufficient) {
  // The paper's Figure 7 warns that duplicating only the vertex at the
  // removed edge can leave a cycle through the new vertex. Construct the
  // situation: break D2 = (L2, L3) for F1 by duplicating only L2 (the
  // naive move) and observe the cycle persists through L2'; the
  // algorithm's prefix duplication (L1 and L2) is what kills it.
  auto ex = testing::MakePaperExample();
  // Naive manual break: route F1 onto {L1, L2', L3}.
  const ChannelId l2p = ex.design.topology.AddVirtualChannel(ex.l2);
  ex.design.routes.SetRoute(ex.f1, {ex.c1, l2p, ex.c3});
  ex.design.Validate();
  const auto cdg = ChannelDependencyGraph::Build(ex.design);
  // New edges L1->L2' and L2'->L3 re-close the loop:
  // L1 -> L2' -> L3 -> L4 -> L1.
  EXPECT_FALSE(IsAcyclic(cdg));

  // The real algorithm applied to the same starting point fixes it.
  auto fresh = testing::MakePaperExample();
  RemoveDeadlocks(fresh.design);
  EXPECT_TRUE(IsDeadlockFree(fresh.design));
}

}  // namespace
}  // namespace nocdr
