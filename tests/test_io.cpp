// Unit tests for design serialization and Graphviz export.
#include "noc/io.h"

#include "util/error.h"

#include <gtest/gtest.h>

#include <sstream>

#include "deadlock/removal.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_helpers.h"

namespace nocdr {
namespace {

/// Structural equality of two designs (names, graphs, routes).
void ExpectSameDesign(const NocDesign& a, const NocDesign& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.topology.SwitchCount(), b.topology.SwitchCount());
  ASSERT_EQ(a.topology.LinkCount(), b.topology.LinkCount());
  ASSERT_EQ(a.topology.ChannelCount(), b.topology.ChannelCount());
  for (std::size_t l = 0; l < a.topology.LinkCount(); ++l) {
    EXPECT_EQ(a.topology.LinkAt(LinkId(l)).src,
              b.topology.LinkAt(LinkId(l)).src);
    EXPECT_EQ(a.topology.LinkAt(LinkId(l)).dst,
              b.topology.LinkAt(LinkId(l)).dst);
    EXPECT_EQ(a.topology.VcCount(LinkId(l)), b.topology.VcCount(LinkId(l)));
  }
  ASSERT_EQ(a.traffic.CoreCount(), b.traffic.CoreCount());
  ASSERT_EQ(a.traffic.FlowCount(), b.traffic.FlowCount());
  EXPECT_EQ(a.attachment, b.attachment);
  for (std::size_t f = 0; f < a.traffic.FlowCount(); ++f) {
    const Flow& fa = a.traffic.FlowAt(FlowId(f));
    const Flow& fb = b.traffic.FlowAt(FlowId(f));
    EXPECT_EQ(fa.src, fb.src);
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_DOUBLE_EQ(fa.bandwidth_mbps, fb.bandwidth_mbps);
    // Channel ids may be renumbered by the reader (it materializes all
    // VCs of a link together); routes must match as (link, vc) pairs.
    const Route& ra = a.routes.RouteOf(FlowId(f));
    const Route& rb = b.routes.RouteOf(FlowId(f));
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t h = 0; h < ra.size(); ++h) {
      EXPECT_EQ(a.topology.ChannelAt(ra[h]), b.topology.ChannelAt(rb[h]));
    }
  }
}

TEST(IoTest, RoundTripPaperExample) {
  auto ex = testing::MakePaperExample();
  std::stringstream buffer;
  WriteDesign(buffer, ex.design);
  const NocDesign loaded = ReadDesign(buffer);
  ExpectSameDesign(ex.design, loaded);
}

TEST(IoTest, RoundTripAfterRemovalKeepsExtraVcs) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  std::stringstream buffer;
  WriteDesign(buffer, ex.design);
  const NocDesign loaded = ReadDesign(buffer);
  ExpectSameDesign(ex.design, loaded);
  EXPECT_EQ(loaded.topology.ExtraVcCount(), 1u);
  EXPECT_TRUE(IsDeadlockFree(loaded));
}

class IoRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTripSweep, RandomDesignsSurviveRoundTrip) {
  const auto d = testing::MakeRandomDesign(GetParam());
  std::stringstream buffer;
  WriteDesign(buffer, d);
  ExpectSameDesign(d, ReadDesign(buffer));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(IoTest, RoundTripSynthesizedBenchmark) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);
  const auto d = SynthesizeDesign(b.traffic, b.name, 9);
  std::stringstream buffer;
  WriteDesign(buffer, d);
  ExpectSameDesign(d, ReadDesign(buffer));
}

TEST(IoTest, HandWrittenFileWithComments) {
  const std::string text = R"(# tiny two-switch design
noc tiny
switch A
switch B
link A B      # link 0
link B A 2    # link 1 with an extra VC
core x A
core y B
flow x y 25.5
flow y x 10
route 0 0:0
route 1 1:1
)";
  std::istringstream is(text);
  const NocDesign d = ReadDesign(is);
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.topology.SwitchCount(), 2u);
  EXPECT_EQ(d.topology.VcCount(LinkId(1u)), 2u);
  EXPECT_DOUBLE_EQ(d.traffic.FlowAt(FlowId(0u)).bandwidth_mbps, 25.5);
  EXPECT_EQ(d.topology.ChannelAt(d.routes.RouteOf(FlowId(1u))[0]).vc, 1u);
}

TEST(IoTest, ParseErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text,
                         const std::string& fragment) {
    std::istringstream is(text);
    try {
      ReadDesign(is);
      FAIL() << "expected DesignParseError for: " << text;
    } catch (const DesignParseError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus\n", "unknown keyword");
  expect_error("noc t\nswitch A\nswitch A\n", "duplicate");
  expect_error("noc t\nlink A B\n", "unknown switch");
  expect_error("noc t\nswitch A\ncore x Z\n", "unknown switch");
  expect_error("noc t\nswitch A\nswitch B\nlink A B\ncore x A\ncore y B\n"
               "flow x y 1\nroute 0 0:7\n",
               "no vc");
  expect_error("noc t\nswitch A\nswitch B\nlink A B\ncore x A\ncore y B\n"
               "flow x y 1\nroute 0 zz\n",
               "hop");
  expect_error("noc t\nswitch A\nswitch B\nlink A B\ncore x A\ncore y B\n"
               "flow x y 1\nroute 5 0:0\n",
               "bad flow index");
}

TEST(IoTest, MissingRouteIsAnError) {
  const std::string text =
      "noc t\nswitch A\nswitch B\nlink A B\ncore x A\ncore y B\n"
      "flow x y 1\n";
  std::istringstream is(text);
  EXPECT_THROW(ReadDesign(is), DesignParseError);
}

TEST(IoTest, InvalidRouteFailsValidation) {
  // Parseable but structurally wrong: route does not reach the flow's
  // destination switch.
  const std::string text =
      "noc t\nswitch A\nswitch B\nswitch C\nlink A B\nlink B C\n"
      "core x A\ncore y C\nflow x y 1\nroute 0 0:0\n";
  std::istringstream is(text);
  EXPECT_THROW(ReadDesign(is), InvalidModelError);
}

TEST(IoTest, TopologyDotMentionsSwitchesAndVcCounts) {
  auto ex = testing::MakePaperExample();
  RemoveDeadlocks(ex.design);
  std::ostringstream os;
  WriteTopologyDot(os, ex.design);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph topology"), std::string::npos);
  EXPECT_NE(dot.find("SW1"), std::string::npos);
  EXPECT_NE(dot.find("x2"), std::string::npos);  // the duplicated link
}

TEST(IoTest, CdgDotMentionsChannelsAndFlows) {
  auto ex = testing::MakePaperExample();
  std::ostringstream os;
  WriteCdgDot(os, ex.design);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph cdg"), std::string::npos);
  EXPECT_NE(dot.find("SW1->SW2.vc0"), std::string::npos);
  EXPECT_NE(dot.find("F0"), std::string::npos);
}

}  // namespace
}  // namespace nocdr
