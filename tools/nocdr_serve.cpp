// nocdr_serve: the certification service on stdin/stdout.
//
// Reads line-delimited JSON requests (see src/serve/protocol.h and the
// README's "Certification service" section), serves them through the
// in-process CertificationService — sharded certificate cache,
// single-flight coalescing, bounded admission — and writes one response
// line per request, in request order. Malformed lines produce an
// "error" response rather than killing the session.
//
//   ./nocdr_serve < examples/serve_requests.jsonl
//
// Flags:
//   --threads N       compute-pool threads, 0 = hardware (default 0)
//   --shards N        cache shards (default 16)
//   --cache-entries N cache entry bound (default 4096)
//   --cache-mb N      cache payload bound in MiB (default 64)
//   --max-pending N   admission bound on in-flight computations
//                     (default 1024; excess requests get "overloaded")
//   --batch N         lines served per pipelined batch (default 4x the
//                     compute width; 1 = strictly sequential)
//   --stats           print service counters to stderr at EOF
//
// Exit code: 0 on EOF, 2 on bad flags. Request-level failures are
// responses, not exit codes — a serving process must outlive them.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/protocol.h"
#include "serve/service.h"

using namespace nocdr;

namespace {

struct Options {
  serve::ServiceConfig service;
  std::size_t batch = 0;
  bool stats = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("nocdr_serve");
  std::size_t cache_mb = 64;
  flags.AddSize("--threads", &opts.service.threads);
  flags.AddSize("--shards", &opts.service.cache.shards);
  flags.AddSize("--cache-entries", &opts.service.cache.max_entries);
  flags.AddSize("--cache-mb", &cache_mb);
  flags.AddSize("--max-pending", &opts.service.max_pending);
  flags.AddSize("--batch", &opts.batch);
  flags.AddSwitch("--stats", &opts.stats);
  flags.Parse(argc, argv);
  opts.service.cache.max_bytes = cache_mb << 20;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  serve::CertificationService service(opts.service);
  std::size_t width = opts.service.threads;
  if (width == 0) {
    width = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t batch_size = opts.batch != 0 ? opts.batch : 4 * width;

  std::vector<serve::CertRequest> batch;
  std::vector<std::size_t> bad_lines;  // indices with parse failures
  std::vector<std::string> bad_errors;
  std::string line;
  std::size_t served = 0;

  const auto flush = [&] {
    // Parse failures become error responses inline; parsable requests
    // are served as one pipelined batch so duplicates coalesce.
    const std::vector<serve::CertResponse> responses =
        service.ServeBatch(batch);
    std::size_t bad = 0;
    for (std::size_t i = 0, r = 0; i < batch.size() + bad_lines.size(); ++i) {
      if (bad < bad_lines.size() && bad_lines[bad] == i) {
        serve::CertResponse error_response;
        error_response.status = serve::ServeStatus::kError;
        error_response.error = bad_errors[bad];
        std::cout << serve::ResponseToJsonLine(error_response) << "\n";
        ++bad;
      } else {
        std::cout << serve::ResponseToJsonLine(responses[r++]) << "\n";
      }
    }
    std::cout.flush();
    served += batch.size() + bad_lines.size();
    batch.clear();
    bad_lines.clear();
    bad_errors.clear();
  };

  std::size_t line_index = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      batch.push_back(serve::ParseRequestLine(line));
    } catch (const std::exception& e) {
      bad_lines.push_back(line_index);
      bad_errors.push_back(e.what());
    }
    ++line_index;
    if (line_index >= batch_size) {
      flush();
      line_index = 0;
    }
  }
  if (line_index > 0) {
    flush();
  }

  if (opts.stats) {
    const serve::ServiceStats stats = service.Stats();
    std::cerr << "nocdr_serve: " << served << " served: " << stats.hits
              << " hits, " << stats.computations << " computed, "
              << stats.coalesced << " coalesced, " << stats.rejected
              << " rejected, " << stats.errors << " errors; cache "
              << stats.cache.entries << " entries / " << stats.cache.bytes
              << " bytes, " << stats.cache.evictions << " evictions\n";
  }
  return 0;
}
