// nocdr_serve: the certification service on stdin/stdout.
//
// Reads line-delimited JSON requests (grammar: docs/PROTOCOL.md;
// operator guide: docs/OPERATIONS.md), serves them through the
// in-process
// CertificationService — sharded certificate cache, single-flight
// coalescing, bounded admission — and writes one response line per
// request, in request order. Protocol v2 session messages
// (session_open / fault_burst / session_snapshot / session_close) are
// routed to an in-process SessionService sharing the same cert cache.
// Malformed lines produce a structured-error response rather than
// killing the session.
//
//   ./nocdr_serve < examples/serve_requests.jsonl
//   ./nocdr_serve < examples/serve_session_requests.jsonl
//
// Flags:
//   --threads N       compute-pool threads, 0 = hardware (default 0)
//   --shards N        cache shards (default 16)
//   --cache-entries N cache entry bound (default 4096)
//   --cache-mb N      cache payload bound in MiB (default 64)
//   --max-pending N   admission bound on in-flight computations
//                     (default 1024; excess requests get "overloaded")
//   --max-sessions N  admission bound on open sessions (default 256)
//   --batch N         v1 lines served per pipelined batch (default 4x
//                     the compute width; 1 = strictly sequential)
//   --admission-tokens N      token-budget refill rate per second; > 0
//                             enables the policy (default 0 = only the
//                             in-flight bound rejects)
//   --admission-burst N       bucket capacity in tokens (default 0 =
//                             one second of refill)
//   --admission-charge-cost   charge requests their design-size cost
//                             (sched::EstimateCost) instead of 1 token
//   --admission-classes SPEC  priority classes as CSV of
//                             name:rank:weight, e.g.
//                             "interactive:0:3,batch:1:1"; requests pick
//                             a class with the "class" field
//   --cache-dir DIR   persistent certificate-cache directory
//                     (serve/disk_cache): warmth survives restarts,
//                     and worker fleets share one directory (single
//                     appender via its LOCK file, many readers)
//   --disk-cache-bytes N      disk store byte bound (default 1 GiB);
//                             whole segments are retired oldest-first
//   --cache-compact   compact the disk store at open (drop superseded
//                     and damaged records) before serving
//   --stats           print service + session counters (every cache
//                     tier and the per-class admission split) plus the
//                     metrics registry — latency histograms included —
//                     to stderr at EOF. The text is rendered from the
//                     v2 "stats" / "metrics" response JSON
//                     (serve/protocol.h), so it cannot drift from what
//                     the protocol reports.
//   --trace-out PATH  write a structured trace of the run (JSON Lines,
//                     schema: docs/OBSERVABILITY.md) at EOF; analyze
//                     with tools/nocdr_trace
//   --trace-sample N  trace every Nth protocol line (default 1 = all;
//                     certification computations are always traced
//                     when --trace-out is set, keyed by cache key)
//   --trace-clock logical|wall
//                     logical (default) = byte-deterministic tick
//                     counts; wall = real microseconds
//   --version         print build provenance (git sha, compiler,
//                     build type) and exit
//
// Stateless requests are batched so duplicates coalesce; a session
// message flushes the pending batch first (responses stay in request
// order) and is then served synchronously — bursts on one session are
// ordered by construction.
//
// Exit code: 0 on EOF, 2 on bad flags, an unusable --cache-dir or an
// unwritable --trace-out. Request-level failures are responses, not
// exit codes — a serving process must outlive them.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/build_info.h"

using namespace nocdr;

namespace {

struct Options {
  serve::ServiceConfig service;
  serve::SessionServiceConfig sessions;
  std::size_t batch = 0;
  bool stats = false;
  std::string trace_out;
  std::size_t trace_sample = 1;
  obs::TraceClockMode trace_clock = obs::TraceClockMode::kLogical;
};

/// Parses "name:rank:weight" CSV entries (rank and weight optional,
/// defaulting to 0 and 1).
std::vector<serve::sched::ClassConfig> ParseClasses(const std::string& spec) {
  std::vector<serve::sched::ClassConfig> classes;
  for (const std::string& entry : bench::SplitCsv(spec)) {
    serve::sched::ClassConfig config;
    const std::size_t first = entry.find(':');
    config.name = entry.substr(0, first);
    if (config.name.empty()) {
      throw std::invalid_argument("--admission-classes: empty class name");
    }
    if (first != std::string::npos) {
      const std::size_t second = entry.find(':', first + 1);
      config.rank = std::stoi(entry.substr(first + 1, second - first - 1));
      if (second != std::string::npos) {
        config.weight = std::stod(entry.substr(second + 1));
      }
    }
    classes.push_back(std::move(config));
  }
  return classes;
}

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("nocdr_serve");
  std::size_t cache_mb = 64;
  std::uint64_t admission_tokens = 0;
  std::uint64_t admission_burst = 0;
  std::string admission_classes;
  std::string trace_clock = "logical";
  bool version = false;
  flags.AddSize("--threads", &opts.service.threads);
  flags.AddSize("--shards", &opts.service.cache.shards);
  flags.AddSize("--cache-entries", &opts.service.cache.max_entries);
  flags.AddSize("--cache-mb", &cache_mb);
  flags.AddSize("--max-pending", &opts.service.max_pending);
  flags.AddSize("--max-sessions", &opts.sessions.max_sessions);
  flags.AddSize("--batch", &opts.batch);
  flags.AddUint64("--admission-tokens", &admission_tokens);
  flags.AddUint64("--admission-burst", &admission_burst);
  flags.AddSwitch("--admission-charge-cost",
                  &opts.service.admission.charge_cost);
  flags.AddString("--admission-classes", &admission_classes);
  flags.AddString("--cache-dir", &opts.service.cache_dir);
  flags.AddSize("--disk-cache-bytes", &opts.service.disk_cache_bytes);
  flags.AddSwitch("--cache-compact", &opts.service.cache_compact);
  flags.AddSwitch("--stats", &opts.stats);
  flags.AddString("--trace-out", &opts.trace_out);
  flags.AddSize("--trace-sample", &opts.trace_sample);
  flags.AddString("--trace-clock", &trace_clock);
  flags.AddSwitch("--version", &version);
  flags.Parse(argc, argv);
  if (version) {
    std::cout << BuildInfoLine("nocdr_serve") << "\n";
    std::exit(0);
  }
  if (opts.trace_sample == 0) {
    flags.Fail("--trace-sample must be >= 1");
  }
  try {
    opts.trace_clock = obs::ParseTraceClock(trace_clock);
  } catch (const std::exception& e) {
    flags.Fail(e.what());
  }
  opts.service.cache.max_bytes = cache_mb << 20;
  opts.service.admission.enabled = admission_tokens > 0;
  opts.service.admission.tokens_per_sec =
      static_cast<double>(admission_tokens);
  opts.service.admission.burst = static_cast<double>(admission_burst);
  if (!admission_classes.empty()) {
    try {
      opts.service.admission.classes = ParseClasses(admission_classes);
    } catch (const std::exception& e) {
      flags.Fail(e.what());
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts = ParseOptions(argc, argv);
  // The sink must outlive the service: computation closures on pool
  // threads finish traces into it until the service's destructor joins
  // them.
  std::unique_ptr<obs::TraceSink> trace_sink;
  if (!opts.trace_out.empty()) {
    trace_sink = std::make_unique<obs::TraceSink>(opts.trace_clock);
    opts.service.trace = trace_sink.get();
  }
  std::unique_ptr<serve::CertificationService> service_holder;
  try {
    service_holder = std::make_unique<serve::CertificationService>(
        opts.service);
  } catch (const std::exception& e) {
    // An unusable --cache-dir is a deployment error, not a request
    // error: fail fast like a bad flag instead of serving cold.
    std::cerr << "nocdr_serve: " << e.what() << "\n";
    return 2;
  }
  serve::CertificationService& service = *service_holder;
  serve::SessionService sessions(service, opts.sessions);
  serve::ServeDispatcher dispatcher(service, sessions);
  std::size_t width = opts.service.threads;
  if (width == 0) {
    width = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t batch_size = opts.batch != 0 ? opts.batch : 4 * width;

  std::vector<serve::CertRequest> batch;
  std::vector<std::size_t> bad_lines;  // indices with parse failures
  std::vector<std::string> bad_responses;
  std::string line;
  std::size_t served = 0;
  std::size_t session_messages = 0;

  const auto flush = [&] {
    // Parse failures become error responses inline; parsable requests
    // are served as one pipelined batch so duplicates coalesce.
    const std::vector<serve::CertResponse> responses =
        service.ServeBatch(batch);
    std::size_t bad = 0;
    for (std::size_t i = 0, r = 0; i < batch.size() + bad_lines.size(); ++i) {
      if (bad < bad_lines.size() && bad_lines[bad] == i) {
        std::cout << bad_responses[bad] << "\n";
        ++bad;
      } else {
        std::cout << serve::ResponseToJsonLine(responses[r++]) << "\n";
      }
    }
    std::cout.flush();
    served += batch.size() + bad_lines.size();
    batch.clear();
    bad_lines.clear();
    bad_responses.clear();
  };

  std::size_t line_index = 0;
  std::uint64_t stream_index = 0;  // trace identity: position in stream
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    // Root trace ids derive from the stream index ("q<index>"), never
    // from scheduling — the property that makes logical traces of the
    // same request file byte-identical at any --threads value.
    std::string trace_id;
    if (trace_sink != nullptr && stream_index % opts.trace_sample == 0) {
      trace_id = "q" + std::to_string(stream_index);
    }
    ++stream_index;
    try {
      serve::ServeMessage message = serve::ParseMessageLine(line);
      if (message.is_session || message.is_stats || message.is_metrics) {
        // Session, stats and metrics messages serve in stream order:
        // flush the stateless batch first, then answer synchronously
        // (a stats response must reflect every request before it).
        flush();
        line_index = 0;
        message.session.trace_id = std::move(trace_id);
        std::cout << dispatcher.Handle(message) << "\n";
        std::cout.flush();
        ++served;
        ++session_messages;
        continue;
      }
      message.certify.trace_id = std::move(trace_id);
      batch.push_back(std::move(message.certify));
    } catch (const serve::ProtocolError&) {
      bad_lines.push_back(line_index);
      // Re-dispatch for the structured error line (best-effort id and
      // protocol_version echo); the line cannot parse, so this cannot
      // serve anything.
      bad_responses.push_back(dispatcher.HandleLine(line));
    }
    ++line_index;
    if (line_index >= batch_size) {
      flush();
      line_index = 0;
    }
  }
  if (line_index > 0) {
    flush();
  }

  if (opts.stats) {
    // Render the operator text through the protocol's own stats and
    // metrics responses — the same bytes a v2 {"type":"stats"} /
    // {"type":"metrics"} client gets — so this report and the
    // introspection API cannot drift.
    const std::string stats_line = serve::StatsResponseToJsonLine(
        serve::StatsRequest{}, service.Stats(), sessions.Stats());
    const std::string metrics_line = serve::MetricsResponseToJsonLine(
        serve::MetricsRequest{}, obs::Metrics().Snapshot());
    std::cerr << "nocdr_serve: " << served << " served (" << session_messages
              << " session messages)\n"
              << serve::StatsTextFromJson(stats_line, "nocdr_serve: ")
              << serve::MetricsTextFromJson(metrics_line, "nocdr_serve: ");
  }
  if (trace_sink != nullptr) {
    // Computation traces finish on pool threads; the service is still
    // alive here, but EOF means every batch was flushed and every
    // response written, so all traces are in the sink.
    if (!trace_sink->WriteFile(opts.trace_out)) {
      std::cerr << "nocdr_serve: cannot write --trace-out " << opts.trace_out
                << "\n";
      return 2;
    }
  }
  return 0;
}
