// nocdr_docs_check: keeps the protocol and observability docs honest
// against the code.
//
// docs/PROTOCOL.md promises that every fenced block tagged `jsonl` is
// machine-checked, and docs/OBSERVABILITY.md promises the same for
// blocks tagged `trace-jsonl`. This tool is that check: it extracts
// each line of every tagged block and validates it against the *real*
// implementation, so the documentation cannot drift from the code:
//
//   * a `jsonl` line without a "status" field is a request: it must
//     parse via serve::ParseMessageLine (the exact entry point
//     nocdr_serve uses);
//   * a `jsonl` line with a "status" field is a response: it must be
//     valid JSON, its status one of "ok" / "overloaded" / "error", any
//     non-ok line must carry an {code, message} error object whose
//     code serve::ParseErrorCode accepts, and a v2 "type" must be a
//     known message type;
//   * a `trace-jsonl` line is a trace-file header (validated by
//     obs::ParseTraceHeaderLine) or a span (obs::ParseSpanLine — the
//     same schema checker tools/nocdr_trace uses).
//
// Blocks tagged anything else (json, text, sh) are prose and skipped.
// A minimum checked-line count guards against the failure mode where a
// fence tag is renamed and the gate silently checks nothing.
//
//   ./nocdr_docs_check ../docs/PROTOCOL.md ../docs/OBSERVABILITY.md
//
// Exit code: 0 all examples valid, 1 any drift (each offender printed
// with its file:line), 2 usage/IO error. Registered as the docs_drift
// CTest test and run by the docs job in CI.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serve/protocol.h"
#include "util/json.h"

using namespace nocdr;

namespace {

struct ExampleLine {
  std::size_t line_number = 0;
  std::string text;
  bool is_trace = false;  // from a ```trace-jsonl fence
};

/// Pulls every line of every ```jsonl and ```trace-jsonl fenced block
/// out of \p markdown.
std::vector<ExampleLine> ExtractJsonlExamples(std::istream& markdown) {
  std::vector<ExampleLine> examples;
  std::string line;
  std::size_t line_number = 0;
  bool in_block = false;
  bool block_is_trace = false;
  while (std::getline(markdown, line)) {
    ++line_number;
    if (line.rfind("```", 0) == 0) {
      const std::string tag = line.substr(3);
      in_block = !in_block && (tag == "jsonl" || tag == "trace-jsonl");
      block_is_trace = in_block && tag == "trace-jsonl";
      continue;
    }
    if (in_block && !line.empty()) {
      examples.push_back({line_number, line, block_is_trace});
    }
  }
  return examples;
}

/// A documented response line: shape-checked against the protocol's
/// stable names (the request side goes through the full parser).
void CheckResponseLine(const JsonValue& json) {
  const std::string& status = json.At("status").AsString();
  if (status != serve::StatusName(serve::ServeStatus::kOk) &&
      status != serve::StatusName(serve::ServeStatus::kOverloaded) &&
      status != serve::StatusName(serve::ServeStatus::kError)) {
    throw serve::ProtocolError(serve::ErrorCode::kInvalidRequest,
                               "unknown response status \"" + status + "\"");
  }
  if (status != serve::StatusName(serve::ServeStatus::kOk)) {
    const JsonValue& error = json.At("error");
    serve::ParseErrorCode(error.At("code").AsString());
    if (error.At("message").kind() != JsonValue::Kind::kString) {
      throw serve::ProtocolError(serve::ErrorCode::kInvalidRequest,
                                 "error.message must be a string");
    }
  }
  if (const JsonValue* version = json.Find("protocol_version")) {
    const std::uint64_t v = version->AsUint();
    if (v != static_cast<std::uint64_t>(serve::kProtocolV1) &&
        v != static_cast<std::uint64_t>(serve::kProtocolV2)) {
      throw serve::ProtocolError(
          serve::ErrorCode::kUnsupportedVersion,
          "documented response claims protocol_version " + std::to_string(v));
    }
  }
  if (const JsonValue* type = json.Find("type")) {
    const std::string& name = type->AsString();
    bool known = name == "certify" || name == "stats" || name == "metrics";
    for (const serve::SessionOp op :
         {serve::SessionOp::kOpen, serve::SessionOp::kBurst,
          serve::SessionOp::kSnapshot, serve::SessionOp::kClose}) {
      known = known || name == serve::SessionOpName(op);
    }
    if (!known) {
      throw serve::ProtocolError(serve::ErrorCode::kUnknownType,
                                 "unknown response type \"" + name + "\"");
    }
  }
}

/// A documented trace-jsonl line: a header or a span, through the same
/// validators tools/nocdr_trace uses.
void CheckTraceLine(const std::string& text) {
  if (obs::IsTraceHeaderLine(text)) {
    obs::ParseTraceHeaderLine(text);
  } else {
    obs::ParseSpanLine(text);
  }
}

/// Checks one markdown file; returns its number of failed lines and
/// adds its checked-line counts into the totals.
std::size_t CheckFile(const std::string& path, std::size_t& requests,
                      std::size_t& responses, std::size_t& trace_lines,
                      std::size_t& total) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "nocdr_docs_check: cannot open " << path << "\n";
    std::exit(2);
  }
  const std::vector<ExampleLine> examples = ExtractJsonlExamples(file);
  std::size_t failures = 0;
  for (const ExampleLine& example : examples) {
    try {
      if (example.is_trace) {
        CheckTraceLine(example.text);
        ++trace_lines;
      } else {
        const JsonValue json = JsonValue::Parse(example.text);
        if (json.Find("status") != nullptr) {
          CheckResponseLine(json);
          ++responses;
        } else {
          serve::ParseMessageLine(example.text);
          ++requests;
        }
      }
    } catch (const std::exception& e) {
      ++failures;
      std::cerr << path << ":" << example.line_number
                << ": documented example does not survive the codec: "
                << e.what() << "\n";
    }
  }
  total += examples.size();
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  // A fence tag rename must not silently turn the gate into a no-op:
  // the real documents carry well over this many checked lines.
  constexpr std::size_t kMinimumExamples = 10;

  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    paths.emplace_back("docs/PROTOCOL.md");
  }

  std::size_t requests = 0;
  std::size_t responses = 0;
  std::size_t trace_lines = 0;
  std::size_t total = 0;
  std::size_t failures = 0;
  for (const std::string& path : paths) {
    failures += CheckFile(path, requests, responses, trace_lines, total);
  }

  if (failures != 0) {
    std::cerr << "nocdr_docs_check: " << failures << " of " << total
              << " documented example line(s) drifted from the "
                 "implementation\n";
    return 1;
  }
  if (total < kMinimumExamples) {
    std::cerr << "nocdr_docs_check: only " << total
              << " example line(s) found across " << paths.size()
              << " file(s) (expected at least " << kMinimumExamples
              << ") — were the fences retagged?\n";
    return 1;
  }
  std::cout << "nocdr_docs_check: " << requests << " request, " << responses
            << " response and " << trace_lines
            << " trace example line(s) validated across " << paths.size()
            << " file(s)\n";
  return 0;
}
