// nocdr_docs_check: keeps docs/PROTOCOL.md honest against the codec.
//
// docs/PROTOCOL.md promises that every fenced block tagged `jsonl` is
// machine-checked. This tool is that check: it extracts each line of
// every ```jsonl block and validates it against the *real* protocol
// implementation, so the documentation cannot drift from the code:
//
//   * a line without a "status" field is a request: it must parse via
//     serve::ParseMessageLine (the exact entry point nocdr_serve uses);
//   * a line with a "status" field is a response: it must be valid
//     JSON, its status one of "ok" / "overloaded" / "error", any
//     non-ok line must carry an {code, message} error object whose
//     code serve::ParseErrorCode accepts, and a v2 "type" must be a
//     known message type.
//
// Blocks tagged anything else (json, text, sh) are prose and skipped.
// A minimum checked-line count guards against the failure mode where a
// fence tag is renamed and the gate silently checks nothing.
//
//   ./nocdr_docs_check ../docs/PROTOCOL.md
//
// Exit code: 0 all examples valid, 1 any drift (each offender printed
// with its file:line), 2 usage/IO error. Registered as the docs_drift
// CTest test and run by the docs job in CI.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/json.h"

using namespace nocdr;

namespace {

struct ExampleLine {
  std::size_t line_number = 0;
  std::string text;
};

/// Pulls every line of every ```jsonl fenced block out of \p markdown.
std::vector<ExampleLine> ExtractJsonlExamples(std::istream& markdown) {
  std::vector<ExampleLine> examples;
  std::string line;
  std::size_t line_number = 0;
  bool in_jsonl = false;
  while (std::getline(markdown, line)) {
    ++line_number;
    if (line.rfind("```", 0) == 0) {
      const std::string tag = line.substr(3);
      in_jsonl = !in_jsonl && tag == "jsonl";
      continue;
    }
    if (in_jsonl && !line.empty()) {
      examples.push_back({line_number, line});
    }
  }
  return examples;
}

/// A documented response line: shape-checked against the protocol's
/// stable names (the request side goes through the full parser).
void CheckResponseLine(const JsonValue& json) {
  const std::string& status = json.At("status").AsString();
  if (status != serve::StatusName(serve::ServeStatus::kOk) &&
      status != serve::StatusName(serve::ServeStatus::kOverloaded) &&
      status != serve::StatusName(serve::ServeStatus::kError)) {
    throw serve::ProtocolError(serve::ErrorCode::kInvalidRequest,
                               "unknown response status \"" + status + "\"");
  }
  if (status != serve::StatusName(serve::ServeStatus::kOk)) {
    const JsonValue& error = json.At("error");
    serve::ParseErrorCode(error.At("code").AsString());
    if (error.At("message").kind() != JsonValue::Kind::kString) {
      throw serve::ProtocolError(serve::ErrorCode::kInvalidRequest,
                                 "error.message must be a string");
    }
  }
  if (const JsonValue* version = json.Find("protocol_version")) {
    const std::uint64_t v = version->AsUint();
    if (v != static_cast<std::uint64_t>(serve::kProtocolV1) &&
        v != static_cast<std::uint64_t>(serve::kProtocolV2)) {
      throw serve::ProtocolError(
          serve::ErrorCode::kUnsupportedVersion,
          "documented response claims protocol_version " + std::to_string(v));
    }
  }
  if (const JsonValue* type = json.Find("type")) {
    const std::string& name = type->AsString();
    bool known = name == "certify" || name == "stats";
    for (const serve::SessionOp op :
         {serve::SessionOp::kOpen, serve::SessionOp::kBurst,
          serve::SessionOp::kSnapshot, serve::SessionOp::kClose}) {
      known = known || name == serve::SessionOpName(op);
    }
    if (!known) {
      throw serve::ProtocolError(serve::ErrorCode::kUnknownType,
                                 "unknown response type \"" + name + "\"");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // A fence tag rename must not silently turn the gate into a no-op:
  // the real document carries well over this many checked lines.
  constexpr std::size_t kMinimumExamples = 10;

  const std::string path = argc > 1 ? argv[1] : "docs/PROTOCOL.md";
  if (argc > 2) {
    std::cerr << "usage: nocdr_docs_check [path/to/PROTOCOL.md]\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "nocdr_docs_check: cannot open " << path << "\n";
    return 2;
  }

  const std::vector<ExampleLine> examples = ExtractJsonlExamples(file);
  std::size_t requests = 0;
  std::size_t responses = 0;
  std::size_t failures = 0;
  for (const ExampleLine& example : examples) {
    try {
      const JsonValue json = JsonValue::Parse(example.text);
      if (json.Find("status") != nullptr) {
        CheckResponseLine(json);
        ++responses;
      } else {
        serve::ParseMessageLine(example.text);
        ++requests;
      }
    } catch (const std::exception& e) {
      ++failures;
      std::cerr << path << ":" << example.line_number
                << ": documented example does not survive the codec: "
                << e.what() << "\n";
    }
  }

  if (failures != 0) {
    std::cerr << "nocdr_docs_check: " << failures << " of " << examples.size()
              << " documented example line(s) drifted from the protocol "
                 "implementation\n";
    return 1;
  }
  if (examples.size() < kMinimumExamples) {
    std::cerr << "nocdr_docs_check: only " << examples.size()
              << " jsonl example line(s) found in " << path
              << " (expected at least " << kMinimumExamples
              << ") — were the fences retagged?\n";
    return 1;
  }
  std::cout << "nocdr_docs_check: " << requests << " request and "
            << responses << " response example line(s) in " << path
            << " validated against the serve codec\n";
  return 0;
}
