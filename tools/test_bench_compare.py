#!/usr/bin/env python3
"""Unit tests for the perf-regression gate (tools/bench_compare.py).

Run directly (python3 tools/test_bench_compare.py) or through CTest,
which registers this file as the `bench_compare_unit` test.
"""

import argparse
import importlib.util
import json
import tempfile
import unittest
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare", Path(__file__).resolve().parent / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def write_rows(path: Path, rows):
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))


class GateHarness(unittest.TestCase):
    """Creates a baseline/fresh directory pair per test."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline_dir = root / "baselines"
        self.fresh_dir = root / "fresh"
        self.baseline_dir.mkdir()
        self.fresh_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def run_gate(self, extra_args=()):
        argv = [
            "--baseline-dir",
            str(self.baseline_dir),
            "--fresh-dir",
            str(self.fresh_dir),
            *extra_args,
        ]
        return bench_compare.main(argv)

    def row(self, **fields):
        base = {"section": "point", "design": "d1"}
        base.update(fields)
        return base


class CleanAndRegressedRuns(GateHarness):
    def test_identical_rows_pass(self):
        rows = [self.row(vcs=3, speedup=2.0, run_ms=12.0)]
        write_rows(self.baseline_dir / "BENCH_a.json", rows)
        write_rows(self.fresh_dir / "BENCH_a.json", rows)
        self.assertEqual(self.run_gate(), 0)

    def test_integer_drift_fails(self):
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=3)])
        write_rows(self.fresh_dir / "BENCH_a.json", [self.row(vcs=4)])
        self.assertEqual(self.run_gate(), 1)

    def test_collapsed_speedup_fails_and_noise_passes(self):
        write_rows(
            self.baseline_dir / "BENCH_a.json", [self.row(speedup=4.0)]
        )
        write_rows(self.fresh_dir / "BENCH_a.json", [self.row(speedup=1.0)])
        self.assertEqual(self.run_gate(), 1)
        write_rows(self.fresh_dir / "BENCH_a.json", [self.row(speedup=2.0)])
        self.assertEqual(self.run_gate(), 0)  # within the 40% floor

    def test_event_engine_speedup_holds_40_percent_floor(self):
        # The sim_latency_curve gate: event_engine_speedup is a *speedup*
        # metric, so a fresh value below 40% of baseline is a regression
        # while anything at or above the floor is treated as noise.
        write_rows(
            self.baseline_dir / "BENCH_sim_latency_curve.json",
            [self.row(event_engine_speedup=30.0)],
        )
        write_rows(
            self.fresh_dir / "BENCH_sim_latency_curve.json",
            [self.row(event_engine_speedup=11.9)],
        )
        self.assertEqual(self.run_gate(), 1)  # 11.9 < 30.0 * 0.4
        write_rows(
            self.fresh_dir / "BENCH_sim_latency_curve.json",
            [self.row(event_engine_speedup=13.0)],
        )
        self.assertEqual(self.run_gate(), 0)  # above the floor

    def test_latency_gate_is_one_sided(self):
        # serve_load's p99 SLO gate: *_latency_us metrics are integers,
        # but they are virtual-time measurements, not seed-exact counts.
        # Growth past baseline*(1+0.25) fails; shrinking never does.
        write_rows(
            self.baseline_dir / "BENCH_serve_load.json",
            [self.row(p99_latency_us=1000, mean_wait_us=400)],
        )
        write_rows(
            self.fresh_dir / "BENCH_serve_load.json",
            [self.row(p99_latency_us=1300, mean_wait_us=400)],
        )
        self.assertEqual(self.run_gate(), 1)  # 1300 > 1000 * 1.25
        write_rows(
            self.fresh_dir / "BENCH_serve_load.json",
            [self.row(p99_latency_us=1200, mean_wait_us=400)],
        )
        self.assertEqual(self.run_gate(), 0)  # within tolerance
        write_rows(
            self.fresh_dir / "BENCH_serve_load.json",
            [self.row(p99_latency_us=500, mean_wait_us=100)],
        )
        self.assertEqual(self.run_gate(), 0)  # improvements pass
        write_rows(
            self.fresh_dir / "BENCH_serve_load.json",
            [self.row(p99_latency_us=1000, mean_wait_us=600)],
        )
        self.assertEqual(self.run_gate(), 1)  # *_wait_us gated the same way
        self.assertEqual(
            self.run_gate(["--latency-tolerance", "0.6"]), 0
        )  # knob widens the gate

    def test_missing_fresh_row_fails(self):
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [self.row(design="other", vcs=1)],
        )
        self.assertEqual(self.run_gate(), 1)

    def test_metric_missing_from_fresh_row_fails(self):
        # Baseline-present, fresh-missing stays a hard failure: the
        # asymmetric twin of the informational fresh-only case below.
        write_rows(
            self.baseline_dir / "BENCH_a.json", [self.row(vcs=1, iters=2)]
        )
        write_rows(self.fresh_dir / "BENCH_a.json", [self.row(vcs=1)])
        self.assertEqual(self.run_gate(), 1)


class FreshOnlyAdditionsAreInformational(GateHarness):
    def test_new_metric_in_fresh_row_passes(self):
        # A bench that grew a column must not hard-fail the gate.
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [self.row(vcs=1, brand_new_metric=7.5)],
        )
        self.assertEqual(self.run_gate(), 0)

    def test_new_metric_is_reported_as_note(self):
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [self.row(vcs=1, brand_new_metric=7.5)],
        )
        comparison = bench_compare.Comparison(
            argparse.Namespace(
                overrides={},
                time_tolerance=None,
                speedup_tolerance=0.6,
                float_tolerance=0.25,
            )
        )
        comparison.compare_bench(
            "BENCH_a",
            self.baseline_dir / "BENCH_a.json",
            self.fresh_dir / "BENCH_a.json",
        )
        self.assertEqual(comparison.regressions, [])
        self.assertTrue(
            any("brand_new_metric" in note for note in comparison.notes),
            comparison.notes,
        )

    def test_new_bench_file_passes_with_note(self):
        # A fresh BENCH file with no baseline at all: informational.
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(self.fresh_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_newbench.json", [self.row(metric=1)]
        )
        self.assertEqual(self.run_gate(), 0)

    def test_new_fresh_rows_pass(self):
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [self.row(vcs=1), self.row(design="extra", vcs=9)],
        )
        self.assertEqual(self.run_gate(), 0)


class ProvenanceHeaderRows(GateHarness):
    def test_provenance_rows_are_skipped(self):
        # BenchJsonWriter stamps a build-provenance header row into
        # every BENCH file; it describes the build, not a measurement,
        # so differing shas/compilers must not fail the gate.
        provenance_base = {
            "git_sha": "aaaa",
            "compiler": "GNU 12",
            "provenance": True,
            "bench": "a",
        }
        provenance_fresh = dict(provenance_base, git_sha="bbbb")
        write_rows(
            self.baseline_dir / "BENCH_a.json",
            [provenance_base, self.row(vcs=1)],
        )
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [provenance_fresh, self.row(vcs=1)],
        )
        self.assertEqual(self.run_gate(), 0)

    def test_provenance_only_in_fresh_is_fine(self):
        # Baselines predating the provenance stamp still gate cleanly.
        write_rows(self.baseline_dir / "BENCH_a.json", [self.row(vcs=1)])
        write_rows(
            self.fresh_dir / "BENCH_a.json",
            [{"provenance": True, "git_sha": "cccc"}, self.row(vcs=1)],
        )
        self.assertEqual(self.run_gate(), 0)


class OverheadGateIsOneSided(GateHarness):
    def test_overhead_growth_fails_and_shrink_passes(self):
        # bench_serve's trace_overhead: instrumentation getting more
        # expensive than baseline*(1+0.5) fails; cheaper always passes.
        write_rows(
            self.baseline_dir / "BENCH_serve.json",
            [self.row(trace_overhead=1.2)],
        )
        write_rows(
            self.fresh_dir / "BENCH_serve.json",
            [self.row(trace_overhead=2.0)],
        )
        self.assertEqual(self.run_gate(), 1)  # 2.0 > 1.2 * 1.5
        write_rows(
            self.fresh_dir / "BENCH_serve.json",
            [self.row(trace_overhead=1.7)],
        )
        self.assertEqual(self.run_gate(), 0)  # within the 50% headroom
        write_rows(
            self.fresh_dir / "BENCH_serve.json",
            [self.row(trace_overhead=0.9)],
        )
        self.assertEqual(self.run_gate(), 0)  # improvements pass
        write_rows(
            self.fresh_dir / "BENCH_serve.json",
            [self.row(trace_overhead=2.0)],
        )
        self.assertEqual(
            self.run_gate(["--overhead-tolerance", "0.8"]), 0
        )  # knob widens the gate


class ToleranceClasses(GateHarness):
    def test_wall_clock_ignored_by_default(self):
        write_rows(
            self.baseline_dir / "BENCH_a.json", [self.row(run_ms=10.0)]
        )
        write_rows(
            self.fresh_dir / "BENCH_a.json", [self.row(run_ms=9000.0)]
        )
        self.assertEqual(self.run_gate(), 0)
        self.assertEqual(self.run_gate(["--time-tolerance", "0.5"]), 1)

    def test_per_metric_override(self):
        write_rows(
            self.baseline_dir / "BENCH_a.json", [self.row(latency=10.0)]
        )
        write_rows(
            self.fresh_dir / "BENCH_a.json", [self.row(latency=14.0)]
        )
        self.assertEqual(self.run_gate(), 1)  # 40% > default 25%
        self.assertEqual(self.run_gate(["--tolerance", "latency=0.5"]), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
