// nocdr_trace: validator and analyzer for nocdr_serve trace files.
//
// A trace file (written by `nocdr_serve --trace-out`, schema:
// docs/OBSERVABILITY.md) is one header line plus one flat JSON object
// per span. This tool re-validates every line with the same schema
// checker the server's tests use (obs::ParseSpanLine), checks the
// structural invariants the sink guarantees — span ids dense and
// sorted within each trace, children contained in their parent's
// interval — and then reports where the time went:
//
//   * per-stage breakdown: every span name with call count, total
//     inclusive time and total self time (inclusive minus children);
//   * top-N self-time table: the individual spans that cost the most;
//   * critical-path decomposition: the slowest root traces, each
//     broken into the span names that own its duration.
//
// "Time" is whatever the file's clock recorded: ticks (logical mode,
// byte-deterministic event counts) or microseconds (wall mode, real
// latencies — the mode to use when profiling a removal run). Spans
// emitted by aggregating stage timers carry a "busy" attribute (time
// actually inside the stage, as opposed to first-entry..last-exit);
// the breakdown prefers it when present.
//
// Flags:
//   --in PATH   trace file to read (required)
//   --check     validate only: no report, exit status is the answer
//   --top N     rows in the self-time / critical-path tables
//               (default 10)
//
// Exit code: 0 on a valid trace, 1 on a schema or structure violation
// (first violation reported on stderr with its line number), 2 on bad
// flags or an unreadable file.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "util/error.h"

using namespace nocdr;

namespace {

struct Options {
  std::string in;
  bool check = false;
  std::size_t top = 10;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("nocdr_trace");
  flags.AddString("--in", &opts.in);
  flags.AddSwitch("--check", &opts.check);
  flags.AddSize("--top", &opts.top);
  flags.Parse(argc, argv);
  if (opts.in.empty()) {
    flags.Fail("--in is required");
  }
  return opts;
}

struct TraceTree {
  std::string id;
  std::vector<obs::ParsedSpan> spans;  // dense, index == span id
  std::vector<std::uint64_t> self;     // self time per span
};

/// Inclusive duration of a span, preferring the stage timers' "busy"
/// attribute over first-entry..last-exit.
std::uint64_t SpanCost(const obs::ParsedSpan& span) {
  const auto busy = span.uint_attrs.find("busy");
  if (busy != span.uint_attrs.end()) {
    return busy->second;
  }
  return span.end - span.start;
}

/// Structural invariants beyond the per-line schema: ids dense from 0
/// in file order (the sink writes them sorted) and every child's
/// interval inside its parent's. Throws InvalidModelError.
void CheckStructure(const TraceTree& tree) {
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    const obs::ParsedSpan& span = tree.spans[i];
    if (span.span != i) {
      throw InvalidModelError("trace \"" + tree.id + "\": span ids not " +
                              "dense/sorted (expected " + std::to_string(i) +
                              ", got " + std::to_string(span.span) + ")");
    }
    if (span.parent >= 0) {
      const obs::ParsedSpan& parent =
          tree.spans[static_cast<std::size_t>(span.parent)];
      if (span.start < parent.start || span.end > parent.end) {
        throw InvalidModelError(
            "trace \"" + tree.id + "\": span " + std::to_string(span.span) +
            " [" + std::to_string(span.start) + ", " +
            std::to_string(span.end) + "] escapes its parent [" +
            std::to_string(parent.start) + ", " + std::to_string(parent.end) +
            "]");
      }
    }
  }
}

/// Self time = own cost minus the children's costs — the per-span
/// share of the critical path. Costs are busy-preferring (SpanCost):
/// aggregated stage spans cover first-entry..last-exit and so
/// *overlap their siblings*; their "busy" attribute is the honest
/// non-overlapping number.
void ComputeSelfTimes(TraceTree& tree) {
  tree.self.resize(tree.spans.size());
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    tree.self[i] = SpanCost(tree.spans[i]);
  }
  for (std::size_t i = 0; i < tree.spans.size(); ++i) {
    const obs::ParsedSpan& span = tree.spans[i];
    if (span.parent >= 0) {
      const auto parent = static_cast<std::size_t>(span.parent);
      tree.self[parent] -= std::min(tree.self[parent], SpanCost(span));
    }
  }
}

struct StageRow {
  std::uint64_t calls = 0;
  std::uint64_t total = 0;  // inclusive (busy-preferring) time
  std::uint64_t self = 0;
};

void PrintReport(const std::vector<TraceTree>& trees, obs::TraceClockMode clock,
                 std::size_t top) {
  const std::string unit =
      clock == obs::TraceClockMode::kWall ? "us" : "ticks";

  // Per-stage breakdown: aggregate by span name across every trace.
  std::map<std::string, StageRow> stages;
  for (const TraceTree& tree : trees) {
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      StageRow& row = stages[tree.spans[i].name];
      row.calls += 1;
      row.total += SpanCost(tree.spans[i]);
      row.self += tree.self[i];
    }
  }
  std::cout << "\nper-stage breakdown (" << unit << "):\n";
  std::vector<std::pair<std::string, StageRow>> ordered(stages.begin(),
                                                        stages.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.total != b.second.total ? a.second.total > b.second.total
                                            : a.first < b.first;
  });
  std::cout << "  " << std::left << std::setw(28) << "stage" << std::right
            << std::setw(8) << "spans" << std::setw(14) << "total"
            << std::setw(14) << "self" << "\n";
  for (const auto& [name, row] : ordered) {
    std::cout << "  " << std::left << std::setw(28) << name << std::right
              << std::setw(8) << row.calls << std::setw(14) << row.total
              << std::setw(14) << row.self << "\n";
  }

  // Top-N spans by self time.
  struct SelfRow {
    std::uint64_t self = 0;
    const TraceTree* tree = nullptr;
    std::size_t span = 0;
  };
  std::vector<SelfRow> selves;
  for (const TraceTree& tree : trees) {
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      selves.push_back({tree.self[i], &tree, i});
    }
  }
  std::sort(selves.begin(), selves.end(),
            [](const SelfRow& a, const SelfRow& b) {
              if (a.self != b.self) {
                return a.self > b.self;
              }
              return a.tree->id != b.tree->id ? a.tree->id < b.tree->id
                                              : a.span < b.span;
            });
  std::cout << "\ntop self-time spans (" << unit << "):\n";
  std::cout << "  " << std::left << std::setw(28) << "span" << std::setw(16)
            << "trace" << std::right << std::setw(14) << "self" << "\n";
  for (std::size_t i = 0; i < std::min(top, selves.size()); ++i) {
    const SelfRow& row = selves[i];
    std::cout << "  " << std::left << std::setw(28)
              << row.tree->spans[row.span].name << std::setw(16)
              << row.tree->id << std::right << std::setw(14) << row.self
              << "\n";
  }

  // Critical-path decomposition: the slowest roots, each broken into
  // the span names owning its duration. Within a single-threaded
  // trace the critical path *is* the self-time partition of the root
  // interval.
  std::vector<const TraceTree*> by_duration;
  for (const TraceTree& tree : trees) {
    if (!tree.spans.empty()) {
      by_duration.push_back(&tree);
    }
  }
  std::sort(by_duration.begin(), by_duration.end(),
            [](const TraceTree* a, const TraceTree* b) {
              const std::uint64_t da = a->spans[0].end - a->spans[0].start;
              const std::uint64_t db = b->spans[0].end - b->spans[0].start;
              return da != db ? da > db : a->id < b->id;
            });
  std::cout << "\ncritical path of the slowest traces (" << unit << "):\n";
  for (std::size_t t = 0; t < std::min(top, by_duration.size()); ++t) {
    const TraceTree& tree = *by_duration[t];
    const std::uint64_t duration = tree.spans[0].end - tree.spans[0].start;
    std::map<std::string, std::uint64_t> path;  // name -> self total
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      path[tree.spans[i].name] += tree.self[i];
    }
    std::vector<std::pair<std::string, std::uint64_t>> parts(path.begin(),
                                                             path.end());
    std::sort(parts.begin(), parts.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    std::cout << "  " << tree.id << " (" << tree.spans[0].name << ", "
              << duration << " " << unit << "):";
    for (const auto& [name, self] : parts) {
      if (self == 0) {
        continue;
      }
      std::cout << " " << name << "=" << self;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  std::ifstream in(opts.in);
  if (!in) {
    std::cerr << "nocdr_trace: cannot read " << opts.in << "\n";
    return 2;
  }

  obs::TraceClockMode clock = obs::TraceClockMode::kLogical;
  std::vector<TraceTree> trees;
  std::map<std::string, std::size_t> index;  // trace id -> trees slot
  std::string line;
  std::size_t line_number = 0;
  std::size_t spans = 0;
  bool saw_header = false;
  try {
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) {
        continue;
      }
      if (!saw_header) {
        // The header must come first; everything after is spans.
        clock = obs::ParseTraceHeaderLine(line);
        saw_header = true;
        continue;
      }
      if (obs::IsTraceHeaderLine(line)) {
        throw InvalidModelError("duplicate trace header");
      }
      obs::ParsedSpan span = obs::ParseSpanLine(line);
      const auto [it, inserted] = index.try_emplace(span.trace, trees.size());
      if (inserted) {
        trees.push_back({span.trace, {}, {}});
      } else if (it->second != trees.size() - 1) {
        // The sink writes each trace contiguously; interleaved trace
        // ids mean the file was not produced (or was corrupted) by it.
        throw InvalidModelError("trace \"" + span.trace +
                                "\" is not contiguous");
      }
      trees[it->second].spans.push_back(std::move(span));
      ++spans;
    }
    if (!saw_header) {
      throw InvalidModelError("missing trace header line");
    }
    for (TraceTree& tree : trees) {
      CheckStructure(tree);
      ComputeSelfTimes(tree);
    }
  } catch (const std::exception& e) {
    std::cerr << "nocdr_trace: " << opts.in << ":" << line_number << ": "
              << e.what() << "\n";
    return 1;
  }

  std::cout << "nocdr_trace: " << opts.in << ": " << trees.size()
            << " traces, " << spans << " spans, "
            << obs::TraceClockName(clock) << " clock\n";
  if (opts.check) {
    return 0;
  }
  PrintReport(trees, clock, opts.top);
  return 0;
}
