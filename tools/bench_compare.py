#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json rows against baselines.

Every bench harness appends JSON-Lines rows to BENCH_<name>.json.
This tool compares a fresh run against the checked-in baselines under
bench/baselines/ with per-metric tolerance classes:

  * string/bool fields            -> exact match (they are deterministic
                                     functions of the code; a change is a
                                     behavioural diff, not noise)
  * integer count fields          -> exact match (same reason: VC counts,
                                     iterations, switch/link/flow counts
                                     and digests are seed-deterministic)
  * wall-clock fields (*_ms)      -> ignored by default; opt in with
                                     --time-tolerance R to fail when
                                     fresh > baseline * (1 + R)
  * speedup fields (speedup*)     -> ratio gate: fail when
                                     fresh < baseline * (1 - R), default
                                     R = 0.6 (machine noise tolerant;
                                     catches a collapsed optimization)
  * overhead fields (*_overhead)  -> one-sided upper gate: fail when
                                     fresh > baseline * (1 + R), default
                                     R = 0.5; getting cheaper passes
                                     (the instrumentation-cost gate)
  * other float fields            -> relative tolerance, default 0.25
                                     in either direction (throughput,
                                     latency, inflation)

Every BENCH file starts with a provenance header row ({"provenance":
true, "git_sha": ...}) stamped by BenchJsonWriter; it describes the
build, not a measurement, and is skipped on both sides of the diff.

Per-metric overrides: --tolerance metric=R (repeatable; R is a relative
tolerance in either direction, e.g. --tolerance avg_packet_latency=0.5).

Rows are keyed by their string-valued fields (section, design, arm,
family, ...), which the benches emit deterministically. A baseline row
with no fresh counterpart is a regression (a bench silently dropped
coverage); extra fresh rows are reported but pass (new coverage).
Likewise asymmetric: a metric present in the baseline but missing from
the fresh row is a regression, while a metric that only exists in the
fresh output (a bench just grew a column) is reported as an
informational note — new measurements must not hard-fail the gate
before their baseline is refreshed. Fresh BENCH files without any
baseline counterpart get the same informational treatment.

Exit codes: 0 clean, 1 regression found, 2 usage/IO error.
"""

import argparse
import json
import math
import sys
from pathlib import Path

IGNORED_KEYS = {"bench"}  # writer metadata, not a metric


def is_time_metric(key: str) -> bool:
    return key.endswith("_ms")


def is_speedup_metric(key: str) -> bool:
    return "speedup" in key


def is_overhead_metric(key: str) -> bool:
    """Instrumentation-cost ratios (bench_serve's trace_overhead).

    Gated one-sided: instrumentation getting *more* expensive than
    baseline*(1+R) fails, getting cheaper silently passes.
    """
    return key.endswith("_overhead")


def is_latency_metric(key: str) -> bool:
    """Virtual-time latency/wait metrics (serve_load's SLO numbers).

    Gated one-sided: getting *slower* than baseline*(1+R) fails, getting
    faster silently passes. They are emitted as integers, so this must
    be checked before the int-exact rule.
    """
    return key.endswith("_latency_us") or key.endswith("_wait_us")


def row_key(row: dict) -> tuple:
    """Identity of a row: its string fields, in sorted key order."""
    return tuple(
        (k, v)
        for k, v in sorted(row.items())
        if isinstance(v, str) and k not in IGNORED_KEYS
    )


def load_rows(path: Path) -> list:
    rows = []
    with path.open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: malformed JSON: {err}")
            if "provenance" in row:
                continue  # build-provenance header, not a measurement
            rows.append(row)
    return rows


def index_rows(rows: list, path: Path) -> dict:
    indexed = {}
    for row in rows:
        key = row_key(row)
        if key in indexed:
            # Duplicate identity: keep the last row (benches append one
            # row per point, so this should not happen; flag it loudly).
            print(f"warning: {path}: duplicate row identity {key}")
        indexed[key] = row
    return indexed


class Comparison:
    def __init__(self, args):
        self.args = args
        self.regressions = []
        self.notes = []

    def add_regression(self, bench, key, message):
        self.regressions.append(
            {"bench": bench, "row": dict(key), "problem": message}
        )

    def compare_metric(self, bench, key, metric, base, fresh):
        overrides = self.args.overrides
        if isinstance(base, bool) or isinstance(fresh, bool):
            if base != fresh:
                self.add_regression(
                    bench, key, f"{metric}: expected {base}, got {fresh}"
                )
            return
        if not isinstance(base, (int, float)):
            if base != fresh:
                self.add_regression(
                    bench, key, f"{metric}: expected {base!r}, got {fresh!r}"
                )
            return
        if not isinstance(fresh, (int, float)):
            self.add_regression(
                bench, key, f"{metric}: expected a number, got {fresh!r}"
            )
            return
        if metric in overrides:
            tol = overrides[metric]
            if not within_relative(base, fresh, tol):
                self.add_regression(
                    bench,
                    key,
                    f"{metric}: {fresh} outside +/-{tol:.0%} of baseline "
                    f"{base}",
                )
            return
        if is_time_metric(metric):
            if self.args.time_tolerance is None:
                return  # wall clock ignored by default
            limit = base * (1.0 + self.args.time_tolerance)
            if fresh > limit:
                self.add_regression(
                    bench,
                    key,
                    f"{metric}: {fresh:.2f} ms > baseline {base:.2f} ms "
                    f"* {1.0 + self.args.time_tolerance:.2f}",
                )
            return
        if is_speedup_metric(metric):
            floor = base * (1.0 - self.args.speedup_tolerance)
            if fresh < floor:
                self.add_regression(
                    bench,
                    key,
                    f"{metric}: {fresh:.2f}x fell below "
                    f"{floor:.2f}x ({1.0 - self.args.speedup_tolerance:.0%} "
                    f"of baseline {base:.2f}x)",
                )
            return
        if is_overhead_metric(metric):
            limit = base * (1.0 + self.args.overhead_tolerance)
            if fresh > limit:
                self.add_regression(
                    bench,
                    key,
                    f"{metric}: {fresh:.3f}x exceeds "
                    f"{limit:.3f}x ({1.0 + self.args.overhead_tolerance:.0%} "
                    f"of baseline {base:.3f}x)",
                )
            return
        if is_latency_metric(metric):
            limit = base * (1.0 + self.args.latency_tolerance)
            if fresh > limit:
                self.add_regression(
                    bench,
                    key,
                    f"{metric}: {fresh} us > baseline {base} us "
                    f"* {1.0 + self.args.latency_tolerance:.2f}",
                )
            return
        if isinstance(base, int) and isinstance(fresh, int):
            if base != fresh:
                self.add_regression(
                    bench, key, f"{metric}: expected {base}, got {fresh}"
                )
            return
        if not within_relative(base, fresh, self.args.float_tolerance):
            self.add_regression(
                bench,
                key,
                f"{metric}: {fresh} outside "
                f"+/-{self.args.float_tolerance:.0%} of baseline {base}",
            )

    def compare_bench(self, bench, baseline_path, fresh_path):
        baseline = index_rows(load_rows(baseline_path), baseline_path)
        fresh = index_rows(load_rows(fresh_path), fresh_path)
        new_metrics = set()
        for key, base_row in baseline.items():
            fresh_row = fresh.get(key)
            if fresh_row is None:
                self.add_regression(
                    bench, key, "row missing from the fresh run"
                )
                continue
            for metric, base_value in base_row.items():
                if metric in IGNORED_KEYS or isinstance(base_value, str):
                    continue
                if metric not in fresh_row:
                    self.add_regression(
                        bench, key, f"{metric}: missing from the fresh row"
                    )
                    continue
                self.compare_metric(
                    bench, key, metric, base_value, fresh_row[metric]
                )
            # Metrics only the fresh row has are informational: a bench
            # that grew a column must not hard-fail the gate before the
            # baseline is refreshed.
            for metric, value in fresh_row.items():
                if (
                    metric in IGNORED_KEYS
                    or isinstance(value, str)
                    or metric in base_row
                ):
                    continue
                new_metrics.add(metric)
        if new_metrics:
            names = ", ".join(sorted(new_metrics))
            self.notes.append(
                f"{bench}: new metric(s) not in the baseline: {names} "
                "(informational; refresh the baseline to gate them)"
            )
        extra = len(fresh) - sum(1 for key in baseline if key in fresh)
        if extra > 0:
            self.notes.append(
                f"{bench}: {extra} fresh row(s) not in the baseline "
                "(new coverage; refresh the baseline to gate them)"
            )


def within_relative(base, fresh, tolerance):
    if base == fresh:
        return True
    if base == 0:
        return math.isclose(fresh, 0.0, abs_tol=tolerance)
    return abs(fresh - base) <= abs(base) * tolerance


def parse_override(text):
    metric, _, value = text.partition("=")
    if not metric or not value:
        raise argparse.ArgumentTypeError(
            f"expected metric=tolerance, got {text!r}"
        )
    try:
        return metric, float(value)
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err))


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("bench/baselines"),
        help="directory with the checked-in BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("build"),
        help="directory with the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the machine-readable diff to this JSON file",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=None,
        help="gate *_ms metrics at baseline*(1+R); off by default",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=0.6,
        help="speedup metrics may drop to baseline*(1-R) (default 0.6)",
    )
    parser.add_argument(
        "--overhead-tolerance",
        type=float,
        default=0.5,
        help="*_overhead metrics may grow to baseline*(1+R), one-sided "
        "(default 0.5)",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=0.25,
        help="*_latency_us/*_wait_us metrics may grow to baseline*(1+R), "
        "one-sided (default 0.25)",
    )
    parser.add_argument(
        "--float-tolerance",
        type=float,
        default=0.25,
        help="relative tolerance for other float metrics (default 0.25)",
    )
    parser.add_argument(
        "--tolerance",
        dest="overrides",
        type=parse_override,
        action="append",
        default=[],
        metavar="METRIC=R",
        help="per-metric relative tolerance override (repeatable)",
    )
    args = parser.parse_args(argv)
    args.overrides = dict(args.overrides)

    if not args.baseline_dir.is_dir():
        print(f"baseline directory {args.baseline_dir} does not exist")
        return 2
    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}")
        return 2

    comparison = Comparison(args)
    compared = []
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        bench = baseline_path.stem
        if not fresh_path.is_file():
            comparison.add_regression(
                bench, (), f"fresh file {fresh_path} missing"
            )
            continue
        compared.append(bench)
        comparison.compare_bench(bench, baseline_path, fresh_path)

    # Fresh BENCH files with no baseline at all: a brand-new bench.
    # Informational — it starts gating once a baseline is committed.
    if args.fresh_dir.is_dir():
        baseline_names = {path.name for path in baselines}
        for fresh_path in sorted(args.fresh_dir.glob("BENCH_*.json")):
            if fresh_path.name not in baseline_names:
                comparison.notes.append(
                    f"{fresh_path.stem}: no baseline for this bench "
                    "(informational; commit one to gate it)"
                )

    for note in comparison.notes:
        print(f"note: {note}")
    if comparison.regressions:
        print(f"\n{len(comparison.regressions)} regression(s):")
        for reg in comparison.regressions:
            ident = ", ".join(f"{k}={v}" for k, v in reg["row"].items())
            print(f"  [{reg['bench']}] {ident}: {reg['problem']}")
    else:
        print(
            f"perf gate clean: {len(compared)} bench file(s) within "
            "tolerance of the baselines"
        )

    if args.output is not None:
        args.output.write_text(
            json.dumps(
                {
                    "compared": compared,
                    "regressions": comparison.regressions,
                    "notes": comparison.notes,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"diff written to {args.output}")
    return 1 if comparison.regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
