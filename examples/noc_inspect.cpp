// Example: a small command-line front end over the whole library.
//
//   noc_inspect info     <design.noc>   structural metrics + verdict
//   noc_inspect remove   <design.noc>   deadlock removal, writes *.fixed.noc
//   noc_inspect order    <design.noc>   resource ordering, writes *.ordered.noc
//   noc_inspect updown   <design.noc>   up*/down* re-routing, writes *.updown.noc
//   noc_inspect dot      <design.noc>   writes topology + CDG dot files
//   noc_inspect simulate <design.noc>   stress simulation, reports deadlock
//
// Run without arguments for a demo on the built-in sample.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "deadlock/updown.h"
#include "deadlock/verify.h"
#include "noc/io.h"
#include "noc/metrics.h"
#include "power/model.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace nocdr;

namespace {

int CmdInfo(NocDesign& design) {
  const auto m = ComputeMetrics(design);
  TextTable t;
  t.AddRow({"switches", std::to_string(m.switches)});
  t.AddRow({"links", std::to_string(m.links)});
  t.AddRow({"channels", std::to_string(m.channels)});
  t.AddRow({"extra VCs", std::to_string(m.extra_vcs)});
  t.AddRow({"cores", std::to_string(m.cores)});
  t.AddRow({"flows", std::to_string(m.flows)});
  t.AddRow({"avg route hops", FormatDouble(m.avg_route_hops, 2)});
  t.AddRow({"max route hops", std::to_string(m.max_route_hops)});
  t.AddRow({"max VCs per link", std::to_string(m.max_vcs_per_link)});
  t.AddRow({"max switch degree", std::to_string(m.max_switch_degree)});
  t.AddRow({"max link load (MB/s)", FormatDouble(m.max_link_load, 1)});
  const auto pa = EstimatePowerArea(design);
  t.AddRow({"switch area (mm^2)",
            FormatDouble(pa.switch_area_um2 / 1e6, 4)});
  t.AddRow({"total power (mW)", FormatDouble(pa.TotalPowerMw(), 2)});
  t.Print(std::cout);

  const auto cert = CertifyDeadlockFreedom(design);
  if (cert.deadlock_free) {
    std::cout << "\nverdict: deadlock-free (certificate checks "
              << (CheckCertificate(design, cert) ? "PASS" : "FAIL")
              << ")\n";
  } else {
    std::cout << "\nverdict: DEADLOCK-PRONE; smallest dependency cycle ("
              << cert.counterexample.size() << " channels):\n ";
    for (ChannelId c : cert.counterexample) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n";
  }
  return 0;
}

int SaveAs(const NocDesign& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  WriteDesign(out, design);
  std::cout << "wrote " << path << "\n";
  return 0;
}

int CmdRemove(NocDesign& design) {
  const auto report = RemoveDeadlocks(design);
  std::cout << Summarize(report) << "\n";
  return SaveAs(design, design.name + ".fixed.noc");
}

int CmdOrder(NocDesign& design) {
  const auto report = ApplyResourceOrdering(design);
  std::cout << "resource ordering: +" << report.vcs_added
            << " VC(s), highest class " << report.max_class << "\n";
  return SaveAs(design, design.name + ".ordered.noc");
}

int CmdUpDown(NocDesign& design) {
  try {
    const auto report = ApplyUpDownRouting(design);
    std::cout << "up*/down*: root "
              << design.topology.SwitchName(report.root)
              << ", hop inflation "
              << FormatDouble(report.HopInflation(), 3) << "\n";
  } catch (const TurnProhibitionInfeasibleError& e) {
    std::cerr << "infeasible: " << e.what() << "\n";
    return 1;
  }
  return SaveAs(design, design.name + ".updown.noc");
}

int CmdDot(NocDesign& design) {
  {
    std::ofstream out(design.name + ".topology.dot");
    WriteTopologyDot(out, design);
  }
  {
    std::ofstream out(design.name + ".cdg.dot");
    WriteCdgDot(out, design);
  }
  std::cout << "wrote " << design.name << ".topology.dot and "
            << design.name << ".cdg.dot\n";
  return 0;
}

int CmdSimulate(const NocDesign& design) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = 4;
  cfg.traffic.packet_length = 10;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 300000;
  cfg.stall_threshold = 2500;
  const auto r = SimulateWorkload(design, cfg);
  std::cout << "cycles: " << r.cycles << ", delivered "
            << r.packets_delivered << "/" << r.packets_offered << "\n";
  if (r.deadlocked) {
    std::cout << "DEADLOCKED with " << r.stuck_flits
              << " stuck flits; circular wait:\n ";
    for (ChannelId c : r.deadlock_cycle) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n";
    return 2;
  }
  std::cout << "no deadlock; avg latency "
            << FormatDouble(r.avg_packet_latency, 1) << " cycles\n";
  return 0;
}

constexpr const char* kSample = R"(noc demo_ring
switch SW1
switch SW2
switch SW3
switch SW4
link SW1 SW2
link SW2 SW3
link SW3 SW4
link SW4 SW1
core a SW1
core b SW4
core c SW3
core d SW1
core e SW4
core f SW2
core g SW1
core h SW3
flow a b 100
flow c d 100
flow e f 100
flow g h 100
route 0 0:0 1:0 2:0
route 1 2:0 3:0
route 2 3:0 0:0
route 3 0:0 1:0
)";

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "info";
  NocDesign design;
  try {
    if (argc > 2) {
      std::ifstream file(argv[2]);
      if (!file) {
        std::cerr << "cannot open " << argv[2] << "\n";
        return 1;
      }
      design = ReadDesign(file);
    } else {
      std::istringstream sample(kSample);
      design = ReadDesign(sample);
      std::cout << "(no file given; using the built-in demo ring)\n\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "failed to load design: " << e.what() << "\n";
    return 1;
  }

  if (command == "info") {
    return CmdInfo(design);
  }
  if (command == "remove") {
    return CmdRemove(design);
  }
  if (command == "order") {
    return CmdOrder(design);
  }
  if (command == "updown") {
    return CmdUpDown(design);
  }
  if (command == "dot") {
    return CmdDot(design);
  }
  if (command == "simulate") {
    return CmdSimulate(design);
  }
  std::cerr << "unknown command '" << command
            << "' (info|remove|order|updown|dot|simulate)\n";
  return 1;
}
