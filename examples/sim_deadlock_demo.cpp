// Example: watch a wormhole network deadlock — then watch the fix.
//
// Runs the flit-level simulator on a deadlock-prone ring under
// aggressive traffic: the untreated design freezes with a circular wait
// (the simulator prints the culprit channels); after RemoveDeadlocks the
// identical workload runs to completion.
//
//   $ ./examples/sim_deadlock_demo
#include <iostream>

#include "deadlock/removal.h"
#include "noc/design.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace nocdr;

namespace {

/// 6-switch unidirectional ring; each core sends 2 hops ahead.
NocDesign BuildRing() {
  NocDesign d;
  d.name = "ring6";
  std::vector<SwitchId> sw;
  for (int i = 0; i < 6; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  std::vector<ChannelId> ring;
  for (int i = 0; i < 6; ++i) {
    ring.push_back(
        *d.topology.FindChannel(d.topology.AddLink(sw[i], sw[(i + 1) % 6]), 0));
  }
  std::vector<CoreId> cores;
  for (int i = 0; i < 6; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[i]);
  }
  d.routes.Resize(0);
  for (int i = 0; i < 6; ++i) {
    d.traffic.AddFlow(cores[i], cores[(i + 2) % 6], 100.0);
  }
  d.routes.Resize(6);
  for (std::size_t i = 0; i < 6; ++i) {
    d.routes.SetRoute(FlowId(i), {ring[i], ring[(i + 1) % 6]});
  }
  d.Validate();
  return d;
}

void Report(const std::string& label, const NocDesign& design,
            const SimResult& r) {
  std::cout << label << ":\n";
  std::cout << "  cycles simulated:  " << r.cycles << "\n";
  std::cout << "  packets delivered: " << r.packets_delivered << " / "
            << r.packets_offered << "\n";
  std::cout << "  deadlocked:        " << (r.deadlocked ? "YES" : "no")
            << "\n";
  if (r.deadlocked) {
    std::cout << "  stuck flits:       " << r.stuck_flits << "\n";
    std::cout << "  circular wait:    ";
    for (ChannelId c : r.deadlock_cycle) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n";
  } else {
    std::cout << "  avg latency:       " << FormatDouble(r.avg_packet_latency, 1)
              << " cycles (max " << r.max_packet_latency << ")\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Wormhole deadlock, live ==\n\n";
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = 6;
  cfg.traffic.packet_length = 10;  // worms longer than the buffering
  cfg.buffer_depth = 2;
  cfg.max_cycles = 100000;
  cfg.stall_threshold = 1000;

  NocDesign design = BuildRing();
  std::cout << "Workload: " << design.traffic.FlowCount()
            << " flows x " << cfg.traffic.packets_per_flow << " packets x "
            << cfg.traffic.packet_length << " flits, buffers of "
            << cfg.buffer_depth << " flits\n\n";

  const auto before = SimulateWorkload(design, cfg);
  Report("Untreated ring", design, before);

  const auto report = RemoveDeadlocks(design);
  std::cout << "RemoveDeadlocks: " << Summarize(report) << "\n\n";

  const auto after = SimulateWorkload(design, cfg);
  Report("After deadlock removal", design, after);

  std::cout << (after.AllDelivered() && !after.deadlocked
                    ? "Same workload, same topology plus "
                      + std::to_string(report.vcs_added)
                      + " VC(s): completes.\n"
                    : "Unexpected: workload did not complete.\n");
  return 0;
}
