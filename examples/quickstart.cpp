// Quickstart: the paper's worked example (Figures 1-4) on the public API.
//
// Builds a 4-switch ring whose four flows create a cyclic channel
// dependency, shows the detected cycle and the Algorithm 2 cost table,
// runs the removal algorithm, and prints the repaired design.
//
//   $ ./examples/quickstart
#include <iostream>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/cost.h"
#include "deadlock/removal.h"
#include "noc/design.h"
#include "util/table.h"

using namespace nocdr;

namespace {

NocDesign BuildFigure1Design() {
  NocDesign design;
  design.name = "figure1_ring";
  TopologyGraph& topo = design.topology;
  const SwitchId sw1 = topo.AddSwitch("SW1");
  const SwitchId sw2 = topo.AddSwitch("SW2");
  const SwitchId sw3 = topo.AddSwitch("SW3");
  const SwitchId sw4 = topo.AddSwitch("SW4");
  const LinkId l1 = topo.AddLink(sw1, sw2);
  const LinkId l2 = topo.AddLink(sw2, sw3);
  const LinkId l3 = topo.AddLink(sw3, sw4);
  const LinkId l4 = topo.AddLink(sw4, sw1);
  const ChannelId c1 = *topo.FindChannel(l1, 0);
  const ChannelId c2 = *topo.FindChannel(l2, 0);
  const ChannelId c3 = *topo.FindChannel(l3, 0);
  const ChannelId c4 = *topo.FindChannel(l4, 0);

  // Four flows, one per route of the paper: R1={L1,L2,L3}, R2={L3,L4},
  // R3={L4,L1}, R4={L1,L2}.
  struct Spec {
    SwitchId src, dst;
    Route route;
  };
  const std::vector<Spec> specs = {{sw1, sw4, {c1, c2, c3}},
                                   {sw3, sw1, {c3, c4}},
                                   {sw4, sw2, {c4, c1}},
                                   {sw1, sw3, {c1, c2}}};
  design.routes.Resize(specs.size());
  int n = 1;
  for (const Spec& spec : specs) {
    const CoreId src = design.traffic.AddCore("src" + std::to_string(n));
    const CoreId dst = design.traffic.AddCore("dst" + std::to_string(n));
    design.attachment.push_back(spec.src);
    design.attachment.push_back(spec.dst);
    const FlowId f = design.traffic.AddFlow(src, dst, 100.0);
    design.routes.SetRoute(f, spec.route);
    ++n;
  }
  design.Validate();
  return design;
}

}  // namespace

int main() {
  NocDesign design = BuildFigure1Design();
  std::cout << "== Quickstart: deadlock removal on the paper's Figure 1 "
               "ring ==\n\n";
  std::cout << "Topology: 4 switches, " << design.topology.LinkCount()
            << " links, " << design.traffic.FlowCount() << " flows\n";

  // 1. Detect: the CDG has the cycle L1 -> L2 -> L3 -> L4 -> L1.
  const auto cdg = ChannelDependencyGraph::Build(design);
  const auto cycle = SmallestCycle(cdg);
  if (!cycle) {
    std::cout << "Design is already deadlock-free.\n";
    return 0;
  }
  std::cout << "\nSmallest CDG cycle (" << cycle->size() << " channels):\n ";
  for (ChannelId c : *cycle) {
    std::cout << " " << design.topology.ChannelLabel(c);
  }
  std::cout << "\n\nForward cost table (paper Table 1):\n";
  const auto table =
      ComputeCycleCostTable(design, *cycle, BreakDirection::kForward);
  TextTable out;
  std::vector<std::string> header = {"flow"};
  for (std::size_t p = 0; p < cycle->size(); ++p) {
    header.push_back("D" + std::to_string(p + 1));
  }
  out.SetHeader(header);
  for (std::size_t r = 0; r < table.flows.size(); ++r) {
    std::vector<std::string> row = {
        "F" + std::to_string(table.flows[r].value() + 1)};
    for (std::size_t p = 0; p < cycle->size(); ++p) {
      row.push_back(std::to_string(table.cost[r][p]));
    }
    out.AddRow(row);
  }
  std::vector<std::string> max_row = {"MAX"};
  for (std::size_t p = 0; p < cycle->size(); ++p) {
    max_row.push_back(std::to_string(table.combined[p]));
  }
  out.AddRow(max_row);
  out.Print(std::cout);

  // 2. Remove: Algorithm 1 picks the cheapest break and repeats.
  const auto report = RemoveDeadlocks(design);
  std::cout << "\nRemoval: " << Summarize(report) << "\n";
  std::cout << "Extra VCs in final topology: "
            << design.topology.ExtraVcCount() << "\n";

  // 3. Verify.
  std::cout << "Deadlock-free now? "
            << (IsDeadlockFree(design) ? "yes" : "NO (bug!)") << "\n";

  std::cout << "\nFinal routes (channels as link.vc):\n";
  for (std::size_t i = 0; i < design.traffic.FlowCount(); ++i) {
    std::cout << "  F" << i + 1 << ":";
    for (ChannelId c : design.routes.RouteOf(FlowId(i))) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n";
  }
  return 0;
}
