// Example: full flow on a realistic SoC — the D26_media benchmark.
//
// Synthesizes application-specific topologies for a sweep of switch
// counts, removes deadlocks with both the paper's algorithm and the
// resource-ordering baseline, and reports VC overhead, area and power
// side by side.
//
//   $ ./examples/media_soc
#include <iostream>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "power/model.h"
#include "power/report.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  const auto benchmark = MakeBenchmark(SocBenchmarkId::kD26Media);
  std::cout << "== D26_media: synthesize, remove deadlocks, estimate "
               "power/area ==\n\n";
  std::cout << "Cores: " << benchmark.traffic.CoreCount()
            << ", flows: " << benchmark.traffic.FlowCount()
            << ", total bandwidth: " << benchmark.traffic.TotalBandwidth()
            << " MB/s\n\n";

  TextTable table;
  table.SetHeader({"switches", "links", "removal VCs", "ordering VCs",
                   "removal area (mm^2)", "ordering area (mm^2)",
                   "removal power (mW)", "ordering power (mW)"});

  for (std::size_t switches : {6u, 10u, 14u, 18u, 22u}) {
    const auto base = SynthesizeDesign(benchmark.traffic, benchmark.name,
                                       switches);
    auto removal_design = base;
    auto ordering_design = base;
    const auto removal = RemoveDeadlocks(removal_design);
    const auto ordering = ApplyResourceOrdering(ordering_design);

    const auto pa_removal = EstimatePowerArea(removal_design);
    const auto pa_ordering = EstimatePowerArea(ordering_design);
    table.AddRow({std::to_string(switches),
                  std::to_string(base.topology.LinkCount()),
                  std::to_string(removal.vcs_added),
                  std::to_string(ordering.vcs_added),
                  FormatDouble(pa_removal.switch_area_um2 / 1e6, 3),
                  FormatDouble(pa_ordering.switch_area_um2 / 1e6, 3),
                  FormatDouble(pa_removal.TotalPowerMw(), 1),
                  FormatDouble(pa_ordering.TotalPowerMw(), 1)});
  }
  table.Print(std::cout);

  // Detailed breakdown at the paper's 14-switch comparison point.
  std::cout << "\nPower decomposition @ 14 switches:\n";
  const auto base14 = SynthesizeDesign(benchmark.traffic, benchmark.name, 14);
  auto removal14 = base14;
  auto ordering14 = base14;
  RemoveDeadlocks(removal14);
  ApplyResourceOrdering(ordering14);
  PrintPowerComparison(std::cout, "removal", EstimatePowerArea(removal14),
                       "ordering", EstimatePowerArea(ordering14));

  std::cout << "\nBoth designs are deadlock-free; the removal algorithm "
               "adds VCs only where a CDG cycle demands it, while\n"
               "resource ordering pays one channel class per hop "
               "position on every shared link.\n";
  return 0;
}
