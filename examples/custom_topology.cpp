// Example: deadlock removal on a hand-built irregular topology.
//
// The paper's method applies to *any* topology and routing function.
// This example builds an asymmetric topology a designer might draw by
// hand — two rings sharing a bridge switch, with a few dedicated links —
// assigns explicit routes, and shows how the removal algorithm treats a
// structure no regular-topology routing rule covers.
//
//   $ ./examples/custom_topology
#include <iostream>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "noc/design.h"
#include "util/table.h"

using namespace nocdr;

namespace {

/// Two unidirectional rings (A: 0-1-2, B: 3-4-5) bridged through switch
/// 6, plus express links. Flows cross between the rings via the bridge.
NocDesign BuildDualRingSoc() {
  NocDesign d;
  d.name = "dual_ring_bridge";
  TopologyGraph& t = d.topology;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 7; ++i) {
    sw.push_back(t.AddSwitch("SW" + std::to_string(i)));
  }
  auto ch = [&](SwitchId a, SwitchId b) {
    return *t.FindChannel(t.AddLink(a, b), 0);
  };
  // Ring A and ring B.
  const ChannelId a01 = ch(sw[0], sw[1]);
  const ChannelId a12 = ch(sw[1], sw[2]);
  const ChannelId a20 = ch(sw[2], sw[0]);
  const ChannelId b34 = ch(sw[3], sw[4]);
  const ChannelId b45 = ch(sw[4], sw[5]);
  const ChannelId b53 = ch(sw[5], sw[3]);
  // Bridge in/out of each ring.
  const ChannelId a2x = ch(sw[2], sw[6]);
  const ChannelId x3 = ch(sw[6], sw[3]);
  const ChannelId b5x = ch(sw[5], sw[6]);
  const ChannelId x0 = ch(sw[6], sw[0]);

  // Cores: one per ring switch.
  std::vector<CoreId> cores;
  for (int i = 0; i < 6; ++i) {
    cores.push_back(d.traffic.AddCore("ip" + std::to_string(i)));
    d.attachment.push_back(sw[i]);
  }

  struct Spec {
    int src, dst;
    Route route;
  };
  const std::vector<Spec> specs = {
      // Intra-ring traffic that closes each ring's CDG cycle.
      {0, 2, {a01, a12}},
      {1, 0, {a12, a20}},
      {2, 1, {a20, a01}},
      {3, 5, {b34, b45}},
      {4, 3, {b45, b53}},
      {5, 4, {b53, b34}},
      // Cross-ring traffic through the bridge.
      {1, 3, {a12, a2x, x3}},
      {4, 0, {b45, b5x, x0}},
      {2, 4, {a2x, x3, b34}},
  };
  d.routes.Resize(0);
  std::vector<Route> routes;
  for (const Spec& s : specs) {
    d.traffic.AddFlow(cores[s.src], cores[s.dst], 80.0);
    routes.push_back(s.route);
  }
  d.routes.Resize(d.traffic.FlowCount());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    d.routes.SetRoute(FlowId(i), routes[i]);
  }
  d.Validate();
  return d;
}

}  // namespace

int main() {
  std::cout << "== Custom irregular topology: dual rings + bridge ==\n\n";
  NocDesign removal_design = BuildDualRingSoc();
  NocDesign ordering_design = removal_design;

  const auto cdg = ChannelDependencyGraph::Build(removal_design);
  std::cout << "Channels: " << cdg.VertexCount()
            << ", dependencies: " << cdg.EdgeCount() << "\n";
  auto cycle = SmallestCycle(cdg);
  std::size_t cycles_seen = 0;
  std::cout << "Smallest cycle length: "
            << (cycle ? std::to_string(cycle->size()) : "none") << "\n\n";

  const auto report = RemoveDeadlocks(removal_design);
  cycles_seen = report.iterations;
  const auto ordering = ApplyResourceOrdering(ordering_design);

  TextTable table;
  table.SetHeader({"method", "extra VCs", "cycles broken", "deadlock-free"});
  table.AddRow({"removal algorithm", std::to_string(report.vcs_added),
                std::to_string(cycles_seen),
                IsDeadlockFree(removal_design) ? "yes" : "no"});
  table.AddRow({"resource ordering", std::to_string(ordering.vcs_added),
                "-", IsDeadlockFree(ordering_design) ? "yes" : "no"});
  table.Print(std::cout);

  std::cout << "\nPer-iteration breaks (removal algorithm):\n";
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const auto& s = report.steps[i];
    std::cout << "  #" << i + 1 << ": cycle of " << s.cycle_length
              << ", broke edge " << s.edge_pos << " "
              << (s.direction == BreakDirection::kForward ? "forward"
                                                          : "backward")
              << ", +" << s.vcs_added << " VC(s), re-routed "
              << s.flows_rerouted << " flow(s)\n";
  }
  return 0;
}
