// Example: the library as a standalone tool over design files.
//
// Reads a NoC design from a text file (see src/noc/io.h for the format),
// removes its deadlocks, and writes the repaired design plus Graphviz
// renderings of the topology and the CDG.
//
//   $ ./examples/file_driven               # runs on a built-in sample
//   $ ./examples/file_driven my_design.noc # runs on your file
#include <fstream>
#include <iostream>
#include <sstream>

#include "deadlock/removal.h"
#include "deadlock/verify.h"
#include "noc/io.h"

using namespace nocdr;

namespace {

/// A deadlock-prone sample in the text format: the paper's Figure 1 ring.
constexpr const char* kSample = R"(# Figure 1 of the paper: 4-switch ring
noc sample_ring
switch SW1
switch SW2
switch SW3
switch SW4
link SW1 SW2   # link 0 = L1
link SW2 SW3   # link 1 = L2
link SW3 SW4   # link 2 = L3
link SW4 SW1   # link 3 = L4
core src1 SW1
core dst1 SW4
core src2 SW3
core dst2 SW1
core src3 SW4
core dst3 SW2
core src4 SW1
core dst4 SW3
flow src1 dst1 100   # F1
flow src2 dst2 100   # F2
flow src3 dst3 100   # F3
flow src4 dst4 100   # F4
route 0 0:0 1:0 2:0
route 1 2:0 3:0
route 2 3:0 0:0
route 3 0:0 1:0
)";

}  // namespace

int main(int argc, char** argv) {
  NocDesign design;
  try {
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::cerr << "cannot open " << argv[1] << "\n";
        return 1;
      }
      design = ReadDesign(file);
      std::cout << "Loaded '" << design.name << "' from " << argv[1] << "\n";
    } else {
      std::istringstream sample(kSample);
      design = ReadDesign(sample);
      std::cout << "No file given; using the built-in sample ring.\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "failed to load design: " << e.what() << "\n";
    return 1;
  }

  std::cout << "  switches: " << design.topology.SwitchCount()
            << ", links: " << design.topology.LinkCount()
            << ", flows: " << design.traffic.FlowCount() << "\n\n";

  const auto before = CertifyDeadlockFreedom(design);
  if (before.deadlock_free) {
    std::cout << "Design is already deadlock-free; nothing to do.\n";
  } else {
    std::cout << "Deadlock risk: dependency cycle of "
              << before.counterexample.size() << " channels:\n ";
    for (ChannelId c : before.counterexample) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n\n";
    const auto report = RemoveDeadlocks(design);
    std::cout << "RemoveDeadlocks: " << Summarize(report) << "\n";
  }

  const auto after = CertifyDeadlockFreedom(design);
  std::cout << "Certificate check: "
            << (CheckCertificate(design, after) ? "PASS" : "FAIL") << "\n\n";

  const std::string base = design.name;
  {
    std::ofstream out(base + ".fixed.noc");
    WriteDesign(out, design);
  }
  {
    std::ofstream out(base + ".topology.dot");
    WriteTopologyDot(out, design);
  }
  {
    std::ofstream out(base + ".cdg.dot");
    WriteCdgDot(out, design);
  }
  std::cout << "Wrote " << base << ".fixed.noc, " << base
            << ".topology.dot, " << base << ".cdg.dot\n";
  return 0;
}
