// Streaming reconfiguration session, in-process: one client against
// serve::SessionService showing protocol v2's stateful side — open a
// design once, stream fault bursts as deltas against the live design
// and CDG the server maintains, and get a fresh certificate + epoch per
// burst instead of re-shipping the whole design every time. Ends with a
// stateless certify against the same CertificationService to show the
// epoch's published cache entry being hit.
//
//   $ ./examples/serve_session
//
// The same messages work over stdin/stdout against the nocdr_serve
// binary; see examples/serve_session_requests.jsonl and
// docs/PROTOCOL.md.
#include <cstdint>
#include <iostream>

#include "gen/generators.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/table.h"

using namespace nocdr;

namespace {

void Show(const std::string& label, const serve::SessionResponse& response) {
  std::cout << label << ": status=" << serve::StatusName(response.status);
  if (response.status != serve::ServeStatus::kOk) {
    std::cout << " error=" << serve::ErrorCodeName(response.error.code)
              << " epoch=" << response.epoch << " (\""
              << response.error.message << "\")\n";
    return;
  }
  std::cout << " epoch=" << response.epoch;
  if (response.op == serve::SessionOp::kBurst) {
    std::cout << " feasible=" << (response.feasible ? "yes" : "no")
              << " affected=" << response.affected_flows
              << " detours=" << response.table_detours
              << " ripups=" << response.ripup_reroutes
              << " vcs_added=" << response.vcs_added;
  }
  std::cout << " key=" << response.key << " ("
            << FormatDouble(response.service_ms, 3) << " ms)\n";
}

serve::SessionEventSpec LinkDown(const std::string& src,
                                 const std::string& dst) {
  serve::SessionEventSpec event;
  event.kind = fault::FaultKind::kLink;
  event.src = src;
  event.dst = dst;
  return event;
}

}  // namespace

int main() {
  // Sessions certify through a CertificationService: every epoch's
  // certificate is also published into its content-addressed cache, so
  // stateless clients of the same service hit the session's work.
  serve::CertificationService service;
  serve::SessionService sessions(service);

  // 1. Open: materialize + treat a 4x4 torus, get the epoch-0
  //    certificate and a server-assigned session id.
  serve::SessionRequest open;
  open.op = serve::SessionOp::kOpen;
  open.id = "open";
  open.spec.kind = serve::RequestKind::kGeneratorSpec;
  open.spec.generator.family = gen::TopologyFamily::kTorus2D;
  open.spec.generator.width = 4;
  open.spec.generator.height = 4;
  open.spec.generator.uniform_fanout = 3;
  open.spec.generator.seed = 7;
  const serve::SessionResponse opened = sessions.Handle(open);
  Show("session_open                  ", opened);

  // 2. A link dies. The server re-routes the affected flows, re-treats
  //    incrementally on the live CDG, re-certifies and advances the
  //    epoch — the client shipped ~60 bytes, not a design.
  serve::SessionRequest burst;
  burst.op = serve::SessionOp::kBurst;
  burst.id = "b1";
  burst.session_id = opened.session_id;
  burst.events = {LinkDown("t0_0", "t1_0")};
  burst.has_expect_epoch = true;
  burst.expect_epoch = 0;
  Show("fault_burst t0_0->t1_0        ", sessions.Handle(burst));

  // 3. Optimistic concurrency: a second controller still at epoch 0 is
  //    refused without side effects and told the actual epoch, so it
  //    can resync without a snapshot round trip.
  serve::SessionRequest raced = burst;
  raced.id = "b1-lost-race";
  raced.events = {LinkDown("t1_0", "t2_0")};
  Show("fault_burst with stale epoch  ", sessions.Handle(raced));

  // 4. Killing a switch with cores attached would strand its flows:
  //    infeasibility is an *answer* (status ok, feasible=no, witnesses
  //    named), the burst is rejected atomically and the epoch holds.
  serve::SessionRequest fatal;
  fatal.op = serve::SessionOp::kBurst;
  fatal.id = "b2-infeasible";
  fatal.session_id = opened.session_id;
  fatal.events.emplace_back();
  fatal.events.back().kind = fault::FaultKind::kSwitch;
  fatal.events.back().switch_name = "t2_2";
  const serve::SessionResponse infeasible = sessions.Handle(fatal);
  Show("fault_burst kills switch t2_2 ", infeasible);
  std::cout << "  disconnected flows:";
  for (const std::uint64_t flow : infeasible.disconnected_flows) {
    std::cout << " " << flow;
  }
  std::cout << "\n";

  // 5. Snapshot the current design text + certificate (e.g. to seed a
  //    stateless re-check elsewhere), then retire the session.
  serve::SessionRequest snapshot;
  snapshot.op = serve::SessionOp::kSnapshot;
  snapshot.id = "snap";
  snapshot.session_id = opened.session_id;
  const serve::SessionResponse snapped = sessions.Handle(snapshot);
  Show("session_snapshot              ", snapped);
  serve::SessionRequest close;
  close.op = serve::SessionOp::kClose;
  close.id = "bye";
  close.session_id = opened.session_id;
  Show("session_close                 ", sessions.Handle(close));

  // 6. Cache coherence: a stateless certify of the snapshot's design
  //    text hits the entry the session published for its last epoch —
  //    same key, same certificate, no recompute.
  serve::CertRequest stateless;
  stateless.id = "post-mortem";
  stateless.kind = serve::RequestKind::kDesignText;
  stateless.design_text = snapped.design_text;
  const serve::CertResponse replay = service.Serve(stateless);
  std::cout << "stateless replay of snapshot  : cache="
            << serve::CacheOutcomeName(replay.cache_outcome)
            << " key=" << replay.key << " certificate_match="
            << (replay.certificate_json == snapped.certificate_json ? "yes"
                                                                    : "no")
            << "\n";

  const serve::SessionServiceStats stats = sessions.Stats();
  std::cout << "\nsession stats: " << stats.opened << " opened, "
            << stats.closed << " closed, " << stats.bursts_applied
            << " bursts applied, " << stats.bursts_infeasible
            << " infeasible, " << stats.epochs_served
            << " epochs served, " << stats.errors << " errors\n";
  return 0;
}
