// Certification service, in-process: one client session against
// CertificationService showing the cache and coalescing semantics —
// a computed miss, a content-addressed hit from a *different* request
// representation, an untreated negative certificate, and the stats
// counters a production deployment would scrape.
//
//   $ ./examples/serve_session
//
// The same requests work over stdin/stdout against the nocdr_serve
// binary; see examples/serve_requests.jsonl and the README.
#include <iostream>

#include "gen/generators.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/canonical.h"
#include "util/table.h"

using namespace nocdr;

namespace {

void Show(const std::string& label, const serve::CertResponse& response) {
  std::cout << label << ": status=" << serve::StatusName(response.status)
            << " cache=" << serve::CacheOutcomeName(response.cache_outcome)
            << " deadlock_free=" << (response.deadlock_free ? "yes" : "no")
            << " vcs_added=" << response.vcs_added << " ("
            << FormatDouble(response.service_ms, 3) << " ms)\n";
}

}  // namespace

int main() {
  serve::CertificationService service;

  // A deliberately cyclic 6x6 torus under XY routing.
  gen::GeneratorSpec spec;
  spec.family = gen::TopologyFamily::kTorus2D;
  spec.width = 6;
  spec.height = 6;
  spec.uniform_fanout = 4;
  spec.seed = 7;

  serve::CertRequest by_spec;
  by_spec.id = "torus";
  by_spec.kind = serve::RequestKind::kGeneratorSpec;
  by_spec.generator = spec;

  // 1. First contact: computed (RemoveDeadlocks + certificate).
  Show("generator spec, first request ", service.Serve(by_spec));

  // 2. Same problem, different representation: the rendered design text
  //    content-addresses to the same canonical entry.
  serve::CertRequest by_text;
  by_text.id = "torus-as-text";
  by_text.kind = serve::RequestKind::kDesignText;
  by_text.design_text = DesignText(gen::GenerateStandardDesign(spec));
  Show("same design as inline text    ", service.Serve(by_text));

  // 3. Certify-only: the untreated torus is deadlock-prone, and the
  //    negative certificate carries the CDG-cycle counterexample.
  serve::CertRequest untreated = by_spec;
  untreated.id = "torus-untreated";
  untreated.treat = false;
  const serve::CertResponse negative = service.Serve(untreated);
  Show("untreated (certify as-is)     ", negative);
  std::cout << "  negative certificate: " << negative.certificate_json
            << "\n";

  // 4. Exact repeat: the request-fingerprint fast path.
  Show("exact repeat of request 1     ", service.Serve(by_spec));

  const serve::ServiceStats stats = service.Stats();
  std::cout << "\nservice stats: " << stats.requests << " requests, "
            << stats.hits << " hits, " << stats.computations
            << " computed, " << stats.coalesced << " coalesced, "
            << stats.errors << " errors\n"
            << "certificate cache: " << stats.cache.entries << " entries, "
            << stats.cache.bytes << " bytes\n";
  return 0;
}
