// Experiment E3 — Figure 9: extra-VC overhead vs. switch count on
// D36_8 (36 cores, fan-out 8), resource ordering vs. deadlock removal.
//
// Expected shape (paper): with dense many-to-many traffic the ordering
// baseline needs on the order of tens to >100 extra VCs and grows with
// switch count; the removal algorithm stays far below it (but, unlike
// D26_media, is not always zero — dense designs do produce CDG cycles).
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== E3 / Figure 9: number of extra VCs, D36_8, "
               "switch count 10..35 ===\n\n";
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);

  TextTable table;
  table.SetHeader({"switches", "links", "resource ordering",
                   "deadlock removal alg."});
  double removal_sum = 0.0, ordering_sum = 0.0;
  std::size_t removal_nonzero = 0, points = 0;
  for (std::size_t switches = 10; switches <= 35; ++switches) {
    const auto point = bench::Compare(b.traffic, b.name, switches);
    table.AddRow({std::to_string(switches), std::to_string(point.links),
                  std::to_string(point.ordering.vcs_added),
                  std::to_string(point.removal.vcs_added)});
    removal_sum += static_cast<double>(point.removal.vcs_added);
    ordering_sum += static_cast<double>(point.ordering.vcs_added);
    removal_nonzero += point.removal.vcs_added > 0 ? 1 : 0;
    ++points;
  }
  table.Print(std::cout);

  std::cout << "\nSeries summary:\n";
  std::cout << "  removal needed VCs on " << removal_nonzero << "/" << points
            << " switch counts (dense traffic does create cycles)\n";
  std::cout << "  mean extra VCs: removal "
            << FormatDouble(removal_sum / static_cast<double>(points), 2)
            << " vs ordering "
            << FormatDouble(ordering_sum / static_cast<double>(points), 2)
            << "\n";
  if (ordering_sum > 0.0) {
    std::cout << "  VC reduction vs ordering: "
              << FormatDouble(100.0 * (1.0 - removal_sum / ordering_sum), 1)
              << "%\n";
  }
  return 0;
}
