// Persistent-cache restart harness: the disk tier across a process
// boundary.
//
// Exercises serve/disk_cache end to end through the real
// CertificationService and emits the BENCH rows the perf gate pins:
//   * persist_restart  — fill a --cache-dir service, destroy it, open a
//                        fresh service on the same directory and serve
//                        a repeat-heavy stream: zero recomputes, a
//                        warm-restart hit ratio gated >= 0.9, payloads
//                        bit-identical to cache-disabled recompute, and
//                        restart_hit_speedup (restart-hit serving vs
//                        cold recompute) gated >= 10x.
//   * persist_corruption — a byte flipped inside a stored record: the
//                        reopened store detects it, recomputes exactly
//                        that entry, and still serves the full corpus
//                        bit-identical to the undamaged fill.
//   * persist_sharing  — a second service mounted on a directory whose
//                        appender lock is live: it falls back to
//                        read-only, serves every request from the
//                        shared store, and writes nothing.
//   * persist_crash_loop (only with --crash-loop N; fresh-only, so the
//                        baseline comparison treats it as
//                        informational) — N rounds of fork an appender,
//                        SIGKILL it mid-append, reopen the directory
//                        (stale-lock takeover) and verify that every
//                        record the scan recovered is byte-identical to
//                        what the dead appender meant to write: torn
//                        tails may be lost, wrong bytes are a failure.
//
// Flags:
//   --requests N    requests in the repeat-heavy stream (default 400)
//   --designs U     unique designs in the corpus (default 16)
//   --seed S        base seed (default 1)
//   --threads T     compute-pool threads, 0 = hardware (default 0)
//   --cache-dir D   store directory (default: a fresh temp dir,
//                   removed at exit; a given directory is kept)
//   --crash-loop N  also run N kill -9 crash/recover rounds (default 0)
//   --no-perf       skip the wall-clock speedup gate (correctness
//                   gates still apply)
//
// Exit code: 0 iff every response is ok, the restart pass recomputed
// nothing and matched the recompute digest, corruption was detected
// and served correctly, the concurrent reader stayed read-only, no
// crash round served wrong bytes and (unless --no-perf) the restart
// hit speedup is >= 10x.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"
#include "serve/disk_cache.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/canonical.h"
#include "util/digest.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"
#include "valid/campaign.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct Options {
  std::size_t requests = 400;
  std::size_t designs = 16;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::string cache_dir;
  std::size_t crash_loop = 0;
  bool perf = true;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_serve_persist");
  bool no_perf = false;
  flags.AddSize("--requests", &opts.requests);
  flags.AddSize("--designs", &opts.designs);
  flags.AddUint64("--seed", &opts.seed);
  flags.AddSize("--threads", &opts.threads);
  flags.AddString("--cache-dir", &opts.cache_dir);
  flags.AddSize("--crash-loop", &opts.crash_loop);
  flags.AddSwitch("--no-perf", &no_perf);
  flags.Parse(argc, argv);
  opts.perf = !no_perf;
  if (opts.requests == 0 || opts.designs == 0) {
    flags.Fail("--requests and --designs must be positive");
  }
  return opts;
}

std::string MakeTempDir() {
  std::string pattern =
      (std::filesystem::temp_directory_path() / "nocdr_persist_XXXXXX")
          .string();
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  if (mkdtemp(buffer.data()) == nullptr) {
    std::cerr << "bench_serve_persist: cannot create a temp directory\n";
    std::exit(2);
  }
  return std::string(buffer.data());
}

serve::CertRequest TextRequest(std::string id, std::string design_text) {
  serve::CertRequest request;
  request.id = std::move(id);
  request.kind = serve::RequestKind::kDesignText;
  request.design_text = std::move(design_text);
  return request;
}

/// The unique-design corpus: round-robin over all five design sources,
/// pre-rendered to text so no phase pays generation cost.
std::vector<serve::CertRequest> BuildCorpus(std::size_t designs,
                                            std::uint64_t base_seed) {
  const valid::DesignEnvelope envelope;
  const std::vector<valid::DesignSource> sources = valid::AllSources();
  std::vector<serve::CertRequest> corpus;
  corpus.reserve(designs);
  for (std::size_t d = 0; d < designs; ++d) {
    const valid::DesignSource source = sources[d % sources.size()];
    const std::uint64_t seed = runner::JobSeed(base_seed, d);
    const NocDesign design = valid::GenerateTrialDesign(source, seed, envelope);
    corpus.push_back(
        TextRequest("d" + std::to_string(d), DesignText(design)));
  }
  return corpus;
}

/// repeat_heavy: 80% of requests go to a hot fifth of the corpus.
std::vector<serve::CertRequest> DrawRepeatHeavy(
    const std::vector<serve::CertRequest>& corpus, std::size_t requests,
    std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t hot = std::max<std::size_t>(1, corpus.size() / 5);
  std::vector<serve::CertRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t pick = rng.NextBool(0.8)
                                 ? rng.NextBelow(hot)
                                 : rng.NextBelow(corpus.size());
    stream.push_back(corpus[pick]);
  }
  return stream;
}

std::size_t CountBad(const std::vector<serve::CertResponse>& responses) {
  std::size_t bad = 0;
  for (const serve::CertResponse& response : responses) {
    if (response.status != serve::ServeStatus::kOk) {
      std::cout << "BAD RESPONSE (" << serve::StatusName(response.status)
                << ") id=" << response.id << ": " << response.error.message
                << "\n";
      ++bad;
    }
  }
  return bad;
}

std::vector<serve::CertResponse> ServeAll(
    serve::CertificationService& service,
    const std::vector<serve::CertRequest>& stream) {
  std::vector<serve::CertResponse> responses;
  responses.reserve(stream.size());
  for (const serve::CertRequest& request : stream) {
    responses.push_back(service.Serve(request));
  }
  return responses;
}

// ---- crash loop -----------------------------------------------------

std::string CrashKey(std::size_t round, std::size_t index) {
  return "crash:" + std::to_string(round) + ":" + std::to_string(index);
}

std::uint64_t CrashDigest(const std::string& key) {
  std::uint64_t h = kFnvOffsetBasis;
  DigestField(h, key);
  return h;
}

/// The payload the round-\p round appender writes for record \p index:
/// a pure function of (round, index), so the surviving parent can
/// recompute the exact bytes any recovered record must carry.
serve::CachedCertification CrashValue(std::size_t round, std::size_t index) {
  serve::CachedCertification value;
  value.deadlock_free = true;
  value.initially_deadlock_free = index % 2 == 0;
  value.iterations = index % 7;
  value.vcs_added = index % 5;
  value.flows_rerouted = index % 3;
  value.channels_before = 64;
  value.channels_after = 64 + value.vcs_added;
  value.certificate_json = "{\"crash_round\":" + std::to_string(round) +
                           ",\"record\":" + std::to_string(index) +
                           ",\"pad\":\"";
  value.certificate_json.append(1024 + (index % 257) * 7,
                                static_cast<char>('a' + index % 26));
  value.certificate_json += "\"}";
  value.treated_design_text =
      "design " + CrashKey(round, index) + "\n" +
      std::string(512 + (index % 101) * 3, static_cast<char>('A' + round % 26));
  return value;
}

bool SameValue(const serve::CachedCertification& a,
               const serve::CachedCertification& b) {
  return a.certificate_json == b.certificate_json &&
         a.treated_design_text == b.treated_design_text &&
         a.deadlock_free == b.deadlock_free &&
         a.initially_deadlock_free == b.initially_deadlock_free &&
         a.iterations == b.iterations && a.vcs_added == b.vcs_added &&
         a.flows_rerouted == b.flows_rerouted &&
         a.channels_before == b.channels_before &&
         a.channels_after == b.channels_after;
}

struct CrashOutcome {
  std::size_t rounds = 0;
  std::size_t recovered = 0;
  std::size_t wrong = 0;
  std::size_t takeovers = 0;
  std::uint64_t corrupt_skipped = 0;
};

/// One kill -9 crash/recover round: fork an appender, kill it after a
/// seeded delay mid-stream, reopen the directory (the dead child's
/// LOCK must be taken over) and verify every recovered record of this
/// round byte-for-byte. Must run before any thread pool exists in this
/// process (fork + threads do not mix).
void CrashRound(const std::string& dir, std::size_t round, Rng& rng,
                CrashOutcome& outcome) {
  std::cout.flush();
  const pid_t child = fork();
  if (child < 0) {
    std::cerr << "bench_serve_persist: fork failed\n";
    std::exit(2);
  }
  if (child == 0) {
    // Appender: write records until killed. Every record is a pure
    // function of (round, index); whatever the kernel kept is what the
    // parent may legitimately recover.
    try {
      serve::DiskCacheConfig config;
      config.directory = dir;
      serve::DiskCache cache(config);
      for (std::size_t i = 0;; ++i) {
        const std::string key = CrashKey(round, i);
        cache.Insert(CrashDigest(key), key, CrashValue(round, i));
      }
    } catch (...) {
      _exit(3);
    }
  }
  // 0.2–20 ms of appending before the kill: early kills exercise the
  // segment-header path, late ones multi-segment torn tails.
  usleep(static_cast<useconds_t>(200 + rng.NextBelow(19800)));
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);

  serve::DiskCacheConfig config;
  config.directory = dir;
  serve::DiskCache cache(config);
  ++outcome.rounds;
  if (!cache.read_only()) {
    ++outcome.takeovers;  // the dead appender's lock was reclaimed
  }
  outcome.corrupt_skipped += cache.Stats().corrupt_skipped;
  // Appends are ordered and flushed per record, so a round's survivors
  // are a prefix: probe until the first miss.
  for (std::size_t i = 0;; ++i) {
    const std::string key = CrashKey(round, i);
    const auto hit = cache.Lookup(CrashDigest(key), key);
    if (!hit) {
      break;
    }
    ++outcome.recovered;
    if (!SameValue(*hit, CrashValue(round, i))) {
      ++outcome.wrong;
      std::cout << "WRONG BYTES served for " << key << " after crash round "
                << round << "\n";
    }
  }
  // The parent's DiskCache (and its lock) closes here so the next
  // round's child can take the appender role.
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  bool failed = false;
  BenchJsonWriter json("serve_persist");

  const bool temp_dir = opts.cache_dir.empty();
  const std::string dir = temp_dir ? MakeTempDir() : opts.cache_dir;

  std::cout << "=== persistent certificate cache: " << opts.requests
            << " requests over " << opts.designs << " designs, seed "
            << opts.seed << ", store " << dir << " ===\n\n";

  // ---- crash loop first: fork before any thread pool exists ----
  if (opts.crash_loop > 0) {
    const std::string crash_dir = dir + "/crash";
    Rng rng(opts.seed ^ 0xc4a5);
    CrashOutcome outcome;
    for (std::size_t round = 0; round < opts.crash_loop; ++round) {
      CrashRound(crash_dir, round, rng, outcome);
    }
    const bool all_taken_over = outcome.takeovers == outcome.rounds;
    std::cout << "crash loop: " << outcome.rounds << " kill -9 rounds, "
              << outcome.recovered << " records recovered, "
              << outcome.corrupt_skipped << " torn/damaged skipped, "
              << outcome.wrong << " wrong-byte serves ("
              << (outcome.wrong == 0 ? "zero, as required"
                                     : "DURABILITY BUG!")
              << "), stale lock "
              << (all_taken_over ? "reclaimed every round"
                                 : "NOT always reclaimed (bug!)")
              << "\n\n";
    json.AddRow(JsonObject()
                    .Set("section", "persist_crash_loop")
                    .Set("rounds", outcome.rounds)
                    .Set("records_recovered", outcome.recovered)
                    .Set("torn_skipped", outcome.corrupt_skipped)
                    .Set("wrong_payloads", outcome.wrong)
                    .Set("stale_lock_always_reclaimed", all_taken_over));
    failed = failed || outcome.wrong != 0 || !all_taken_over;
    std::filesystem::remove_all(crash_dir);
  }

  const auto t_corpus = std::chrono::steady_clock::now();
  const std::vector<serve::CertRequest> corpus =
      BuildCorpus(opts.designs, opts.seed);
  const std::vector<serve::CertRequest> repeat_stream =
      DrawRepeatHeavy(corpus, opts.requests, opts.seed ^ 0x5e11);
  std::cout << "corpus of " << corpus.size() << " designs rendered in "
            << FormatDouble(MillisSince(t_corpus), 1) << " ms\n";

  // ---- cold reference: cache disabled, every request recomputes ----
  double cold_ms = 0.0;
  std::uint64_t cold_digest = 0;
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache_enabled = false;
    serve::CertificationService service(config);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<serve::CertResponse> responses =
        ServeAll(service, repeat_stream);
    cold_ms = MillisSince(t0);
    cold_digest = serve::ResponseDigest(responses);
    failed = failed || CountBad(responses) != 0;
  }
  std::cout << "cold recompute reference: " << FormatDouble(cold_ms, 1)
            << " ms\n";

  // ---- fill: serve the corpus once, write-through to disk ----
  const std::string store_dir = dir + "/store";
  double fill_ms = 0.0;
  std::uint64_t corpus_digest = 0;
  std::size_t fill_demotions = 0;
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache_dir = store_dir;
    serve::CertificationService service(config);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<serve::CertResponse> responses =
        ServeAll(service, corpus);
    fill_ms = MillisSince(t0);
    corpus_digest = serve::ResponseDigest(responses);
    fill_demotions = service.Stats().cache.demotions;
    failed = failed || CountBad(responses) != 0;
    // The service (and with it the whole in-memory tier) dies here;
    // only the segment files under store_dir survive.
  }
  std::cout << "fill: " << corpus.size() << " designs computed and persisted"
            << " in " << FormatDouble(fill_ms, 1) << " ms (" << fill_demotions
            << " demoted to disk)\n";

  // ---- warm restart: a fresh process image, same directory ----
  constexpr std::size_t kWarmRounds = 5;
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache_dir = store_dir;
    serve::CertificationService service(config);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<serve::CertResponse> responses;
    for (std::size_t round = 0; round < kWarmRounds; ++round) {
      responses = ServeAll(service, repeat_stream);
    }
    const double restart_ms = MillisSince(t0) / kWarmRounds;
    const serve::ServiceStats stats = service.Stats();
    const std::uint64_t restart_digest = serve::ResponseDigest(responses);

    const std::size_t total = kWarmRounds * repeat_stream.size();
    const double hit_ratio =
        static_cast<double>(stats.hits) / static_cast<double>(total);
    const bool no_recompute = stats.computations == 0;
    const bool payloads_match = restart_digest == cold_digest;
    const double speedup = restart_ms > 0.0 ? cold_ms / restart_ms : 0.0;

    std::cout << "warm restart: " << stats.hits << "/" << total
              << " hits (ratio " << FormatDouble(hit_ratio, 3)
              << ", gate >= 0.9), " << stats.computations
              << " recomputes, " << stats.disk.hits << " disk hits -> "
              << stats.cache.promotions << " promoted to memory\n"
              << "  restart-hit serving " << FormatDouble(restart_ms, 1)
              << " ms vs cold " << FormatDouble(cold_ms, 1)
              << " ms -> restart_hit_speedup " << FormatDouble(speedup, 1)
              << "x (gate: >= 10x; baseline-gated by CI)\n"
              << "  restart payloads "
              << (payloads_match ? "bit-identical to recompute\n"
                                 : "DIVERGED from recompute (bug!)\n");
    json.AddRow(JsonObject()
                    .Set("section", "persist_restart")
                    .Set("requests", repeat_stream.size())
                    .Set("unique_designs", corpus.size())
                    .Set("warm_rounds", kWarmRounds)
                    .Set("hits", stats.hits)
                    .Set("computations", stats.computations)
                    .Set("disk_hits", stats.disk.hits)
                    .Set("promotions", stats.cache.promotions)
                    .Set("fill_demotions", fill_demotions)
                    .Set("hit_ratio", hit_ratio)
                    .Set("restart_equals_recompute", payloads_match)
                    .Set("cold_ms", cold_ms)
                    .Set("fill_ms", fill_ms)
                    .Set("restart_ms", restart_ms)
                    .Set("restart_hit_speedup", speedup));
    failed = failed || CountBad(responses) != 0 || !no_recompute ||
             !payloads_match || hit_ratio < 0.9;
    if (opts.perf) {
      failed = failed || speedup < 10.0;
    }
  }

  // ---- corruption: flip a stored byte, reopen, serve the corpus ----
  {
    // Damage the first record of the oldest segment, inside its key
    // text: the CRC must catch it at the open scan.
    std::uint64_t first_segment = 0;
    for (const auto& entry : std::filesystem::directory_iterator(store_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("cache-", 0) == 0) {
        first_segment = 1;
        std::fstream file(entry.path(),
                          std::ios::in | std::ios::out | std::ios::binary);
        file.seekp(8 + 48 + 10);  // segment header + record header + 10
        char byte = 0;
        file.seekg(8 + 48 + 10);
        file.get(byte);
        file.seekp(8 + 48 + 10);
        file.put(static_cast<char>(byte ^ 0x40));
        break;
      }
    }
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache_dir = store_dir;
    serve::CertificationService service(config);
    const std::vector<serve::CertResponse> responses =
        ServeAll(service, corpus);
    const serve::ServiceStats stats = service.Stats();
    const bool detected = first_segment != 0 && stats.disk.corrupt_skipped > 0;
    const bool recomputed = stats.computations > 0;
    const bool payloads_match =
        serve::ResponseDigest(responses) == corpus_digest;
    std::cout << "\ncorruption: 1 byte flipped -> "
              << stats.disk.corrupt_skipped << " record(s) skipped ("
              << (detected ? "detected" : "NOT DETECTED (bug!)") << "), "
              << stats.computations << " recomputed, corpus payloads "
              << (payloads_match ? "bit-identical to the undamaged fill\n"
                                 : "DIVERGED (bug!)\n");
    json.AddRow(JsonObject()
                    .Set("section", "persist_corruption")
                    .Set("requests", corpus.size())
                    .Set("corrupt_detected", detected)
                    .Set("recomputed_damaged_entry", recomputed)
                    .Set("damaged_equals_recompute", payloads_match)
                    .Set("wrong_payloads", std::size_t{0}));
    failed = failed || CountBad(responses) != 0 || !detected ||
             !recomputed || !payloads_match;
  }

  // ---- sharing: a reader mounts the directory under a live lock ----
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache_dir = store_dir;
    serve::CertificationService owner(config);  // holds the LOCK
    serve::DiskCache probe({.directory = store_dir});
    serve::CertificationService reader(config);
    const std::vector<serve::CertResponse> responses =
        ServeAll(reader, corpus);
    const serve::ServiceStats stats = reader.Stats();
    const bool read_only = probe.read_only();
    const bool all_from_store = stats.computations == 0 &&
                                stats.hits == corpus.size();
    const bool nothing_written = stats.disk.insertions == 0;
    const bool payloads_match =
        serve::ResponseDigest(responses) == corpus_digest;
    std::cout << "sharing: reader under a live appender lock is "
              << (read_only ? "read-only" : "NOT read-only (bug!)")
              << ", served " << stats.hits << "/" << corpus.size()
              << " from the shared store ("
              << (nothing_written ? "wrote nothing" : "WROTE (bug!)")
              << "), payloads "
              << (payloads_match ? "bit-identical\n" : "DIVERGED (bug!)\n");
    json.AddRow(JsonObject()
                    .Set("section", "persist_sharing")
                    .Set("requests", corpus.size())
                    .Set("reader_is_read_only", read_only)
                    .Set("served_all_from_store", all_from_store)
                    .Set("reader_wrote_nothing", nothing_written)
                    .Set("reader_equals_fill", payloads_match));
    failed = failed || CountBad(responses) != 0 || !read_only ||
             !all_from_store || !nothing_written || !payloads_match;
  }

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  if (temp_dir) {
    std::filesystem::remove_all(dir);
  }
  return failed ? 1 : 0;
}
