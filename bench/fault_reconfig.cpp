// Fault-injection & online-reconfiguration campaign + perf comparison.
//
// Two halves:
//   1. The fault-reconfig validation campaign (src/valid/fault_campaign):
//      per-source summaries, the campaign digest and any mismatch rows
//      land in BENCH_fault_reconfig.json; mismatching trials also dump a
//      fault_repro_trial<i>.json whose (source, design_seed) pair replays
//      the trial via --replay-source/--replay-seed.
//   2. The incremental-vs-rebuild perf ladder: on designs of growing
//      size, one fault burst is re-certified through the live-CDG path
//      (ApplyFaultBurst + CertifyFromCdg) and through the from-scratch
//      path (ApplyFaultBurstRebuild + CertifyDeadlockFreedom); outcomes
//      must be bit-identical and the "speedup" column is gated by the
//      perf-regression CI job.
//
// Flags:
//   --trials N        campaign trial rows (default 500)
//   --seed S          campaign base seed (default 1)
//   --threads T       worker threads, 0 = hardware (default 0)
//   --sources a,b,c   comma list of synthesized|mesh|torus|ring|fat_tree
//   --emit-trials     emit one BENCH row per trial (nightly artifacts)
//   --no-perf         skip the perf ladder
//   --check-determinism  rerun at 1 and 3 threads, require equal digests
//   --replay-source NAME --replay-seed N  rerun one trial verbosely
//
// Exit code: 0 iff no campaign mismatch, all determinism digests match,
// and (unless --no-perf) the incremental path beats the rebuild path on
// the largest design.
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "cdg/cdg.h"
#include "cdg/incremental.h"
#include "deadlock/removal.h"
#include "deadlock/verify.h"
#include "fault/plan.h"
#include "fault/reconfigure.h"
#include "gen/generators.h"
#include "soc/synthetic.h"
#include "synth/synthesizer.h"
#include "util/json.h"
#include "util/table.h"
#include "valid/fault_campaign.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct Options {
  valid::FaultCampaignConfig campaign;
  bool perf = true;
  bool emit_trials = false;
  bool check_determinism = false;
  std::string replay_source;
  std::uint64_t replay_seed = 0;
  bool replay_seed_given = false;
  bool replay = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_fault_reconfig");
  std::string sources_csv;
  bool sources_given = false;
  bool no_perf = false;
  bool replay_source_given = false;
  flags.AddSize("--trials", &opts.campaign.trials);
  flags.AddUint64("--seed", &opts.campaign.base_seed);
  flags.AddSize("--threads", &opts.campaign.threads);
  flags.AddString("--sources", &sources_csv, &sources_given);
  flags.AddSwitch("--emit-trials", &opts.emit_trials);
  flags.AddSwitch("--no-perf", &no_perf);
  flags.AddSwitch("--check-determinism", &opts.check_determinism);
  flags.AddString("--replay-source", &opts.replay_source,
                  &replay_source_given);
  flags.AddUint64("--replay-seed", &opts.replay_seed,
                  &opts.replay_seed_given);
  flags.Parse(argc, argv);
  opts.perf = !no_perf;
  opts.replay = replay_source_given || opts.replay_seed_given;
  if (opts.replay_seed_given && !replay_source_given) {
    flags.Fail("--replay-seed needs --replay-source");
  }
  if (replay_source_given && !opts.replay_seed_given) {
    flags.Fail("--replay-source needs --replay-seed");
  }
  if (sources_given) {
    opts.campaign.sources.clear();
    for (const std::string& name : bench::SplitCsv(sources_csv)) {
      const auto source = valid::ParseSource(name);
      if (!source.has_value()) {
        flags.Fail("unknown design source \"" + name + "\"");
      }
      opts.campaign.sources.push_back(*source);
    }
    if (opts.campaign.sources.empty()) {
      flags.Fail("--sources needs at least one source");
    }
  }
  return opts;
}

int Replay(const Options& opts) {
  const auto source = valid::ParseSource(opts.replay_source);
  if (!source.has_value()) {
    std::cerr << "unknown design source \"" << opts.replay_source << "\"\n";
    return 2;
  }
  const valid::FaultTrialRow row =
      valid::RunFaultTrial(*source, opts.replay_seed, opts.campaign);
  std::cout << "replayed " << valid::SourceName(*source) << " seed "
            << opts.replay_seed << ": design " << row.design << ", verdict "
            << valid::FaultVerdictName(row.verdict) << "\n";
  if (row.verdict == valid::FaultVerdict::kMismatch) {
    std::cout << "REPRODUCED: " << row.mismatch << "\n";
    return 0;
  }
  std::cout << "did not reproduce (verdict is clean now)\n";
  return 1;
}

/// One rung of the perf ladder: a treated, certified design plus the
/// burst the timing loops replay.
struct PerfPoint {
  std::string label;
  NocDesign design;       // post-treatment, pre-fault
  NextHopTable table;     // empty for synthesized designs
  fault::FaultBurst burst;
};

std::vector<PerfPoint> MakePerfLadder() {
  std::vector<PerfPoint> points;
  const auto add_synth = [&](std::size_t cores, std::size_t per_switch) {
    SyntheticSocSpec spec;
    spec.cores = cores;
    spec.fanout = 4;
    spec.hubs = std::max<std::size_t>(1, cores / 24);
    const auto soc = MakeSyntheticSoc(spec);
    PerfPoint point;
    point.label = "S" + std::to_string(cores);
    point.design =
        SynthesizeDesign(soc.traffic, soc.name, cores / per_switch);
    points.push_back(std::move(point));
  };
  add_synth(48, 3);
  add_synth(96, 3);
  add_synth(192, 3);
  {
    gen::GeneratorSpec spec;
    spec.family = gen::TopologyFamily::kTorus2D;
    spec.width = 10;
    spec.height = 10;
    spec.pattern = gen::TrafficPattern::kUniform;
    spec.uniform_fanout = 3;
    spec.seed = 7;
    PerfPoint point;
    point.label = "torus10x10";
    point.design = gen::GenerateStandardDesign(spec, &point.table);
    points.push_back(std::move(point));
  }
  add_synth(288, 3);  // largest last: the gated speedup
  for (PerfPoint& point : points) {
    RemoveDeadlocks(point.design);
    fault::FaultPlanOptions plan_opts;
    plan_opts.bursts = 1;
    plan_opts.max_links_per_burst = 2;
    plan_opts.switch_fault_probability = 0.0;
    const fault::FaultPlan plan =
        fault::DrawFaultPlan(point.design, 11, plan_opts);
    point.burst = plan.bursts.front();
  }
  return points;
}

struct PerfSample {
  double best_ms = 0.0;
  std::size_t affected = 0;
  std::size_t channels_after = 0;
  DeadlockCertificate cert;
  RouteSet routes;
};

/// Best-of-N timing of one re-certify path on \p point's burst. All
/// copies are made outside the timed region; the timed region is the
/// burst application plus certification.
PerfSample TimePath(const PerfPoint& point, bool incremental) {
  PerfSample sample;
  double total = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    NocDesign design = point.design;
    NextHopTable table = point.table;
    fault::ReconfigureOptions opts;
    opts.table = table.empty() ? nullptr : &table;
    fault::FaultState state = fault::FaultState::None(design);
    ChannelDependencyGraph cdg;
    std::optional<DirtyCycleFinder> finder;
    if (incremental) {
      cdg = ChannelDependencyGraph::Build(design);
      finder.emplace(cdg);
      // Warm the finder cache to the pre-fault steady state: in
      // production the finder is the one the initial removal run left
      // behind, already knowing the graph is acyclic.
      (void)finder->Pick(CyclePolicy::kSmallestFirst);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const fault::ReconfigureReport report =
        incremental ? fault::ApplyFaultBurst(design, cdg, *finder, state,
                                             point.burst, opts)
                    : fault::ApplyFaultBurstRebuild(design, state,
                                                    point.burst, opts);
    const DeadlockCertificate cert = incremental
                                         ? CertifyFromCdg(design, cdg)
                                         : CertifyDeadlockFreedom(design);
    const double ms = MillisSince(t0);

    if (rep == 0 || ms < sample.best_ms) {
      sample.best_ms = ms;
    }
    sample.affected = report.affected_flows.size();
    sample.channels_after = design.topology.ChannelCount();
    sample.cert = cert;
    sample.routes = design.routes;
    total += ms;
    if (total > 300.0) {
      break;
    }
  }
  return sample;
}

/// Runs the ladder; returns the largest design's speedup (0 on outcome
/// mismatch, which also prints loudly).
double RunPerfLadder(BenchJsonWriter& json, bool& mismatch) {
  std::cout << "\n=== incremental re-certify vs full rebuild ===\n\n";
  const std::vector<PerfPoint> points = MakePerfLadder();
  TextTable table;
  table.SetHeader({"design", "channels", "affected", "rebuild (ms)",
                   "incremental (ms)", "speedup"});
  double largest_speedup = 0.0;
  for (const PerfPoint& point : points) {
    const PerfSample inc = TimePath(point, /*incremental=*/true);
    const PerfSample reb = TimePath(point, /*incremental=*/false);
    if (inc.channels_after != reb.channels_after ||
        inc.affected != reb.affected ||
        inc.cert.deadlock_free != reb.cert.deadlock_free ||
        inc.cert.topological_order != reb.cert.topological_order) {
      std::cout << "PATH MISMATCH on " << point.label
                << ": incremental and rebuild outcomes differ\n";
      mismatch = true;
    }
    for (std::size_t f = 0; f < inc.routes.FlowCount(); ++f) {
      if (inc.routes.RouteOf(FlowId(f)) != reb.routes.RouteOf(FlowId(f))) {
        std::cout << "PATH MISMATCH on " << point.label << ": flow " << f
                  << " routed differently\n";
        mismatch = true;
        break;
      }
    }
    const double speedup =
        inc.best_ms > 0.0 ? reb.best_ms / inc.best_ms : 0.0;
    largest_speedup = speedup;  // ladder ends with the largest design
    table.AddRow({point.label,
                  std::to_string(point.design.topology.ChannelCount()),
                  std::to_string(inc.affected),
                  FormatDouble(reb.best_ms, 3),
                  FormatDouble(inc.best_ms, 3),
                  FormatDouble(speedup, 1) + "x"});
    json.AddRow(JsonObject()
                    .Set("section", "reconfig_perf")
                    .Set("design", point.label)
                    .Set("channels", point.design.topology.ChannelCount())
                    .Set("flows", point.design.traffic.FlowCount())
                    .Set("affected_flows", inc.affected)
                    .Set("rebuild_ms", reb.best_ms)
                    .Set("incremental_ms", inc.best_ms)
                    .Set("speedup", speedup));
  }
  table.Print(std::cout);
  std::cout << "\nSpeedup on largest design (" << points.back().label
            << "): " << FormatDouble(largest_speedup, 1)
            << "x (gate: must beat 1x; baseline-gated by CI)\n";
  return largest_speedup;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  if (opts.replay) {
    return Replay(opts);
  }

  std::cout << "=== fault-reconfig campaign: " << opts.campaign.trials
            << " trials, seed " << opts.campaign.base_seed << ", "
            << opts.campaign.sources.size() << " design sources ===\n\n";
  const auto t0 = std::chrono::steady_clock::now();
  const valid::FaultCampaignResult result =
      valid::RunFaultCampaign(opts.campaign);
  const double campaign_ms = MillisSince(t0);

  BenchJsonWriter json("fault_reconfig");
  if (opts.emit_trials) {
    for (const valid::FaultTrialRow& row : result.rows) {
      json.AddRow(valid::FaultRowToJson(row).Set("section", "trial"));
    }
  }

  // Per-source aggregates.
  TextTable table;
  table.SetHeader({"source", "trials", "reconfigured", "disconnected",
                   "mismatch", "affected", "detours", "ripups", "vcs_added",
                   "mid_deadlocks"});
  for (const valid::DesignSource source : opts.campaign.sources) {
    std::size_t trials = 0, reconf = 0, disc = 0, mism = 0, affected = 0,
                detours = 0, ripups = 0, vcs = 0, middl = 0;
    for (const valid::FaultTrialRow& row : result.rows) {
      if (row.source != source) {
        continue;
      }
      ++trials;
      reconf += row.verdict == valid::FaultVerdict::kReconfigured;
      disc += row.verdict == valid::FaultVerdict::kDisconnected;
      mism += row.verdict == valid::FaultVerdict::kMismatch;
      affected += row.affected_flows;
      detours += row.table_detours;
      ripups += row.ripup_reroutes;
      vcs += row.removal_vcs_added;
      middl += row.midflight_deadlocks;
    }
    const std::string name = valid::SourceName(source);
    table.AddRow({name, std::to_string(trials), std::to_string(reconf),
                  std::to_string(disc), std::to_string(mism),
                  std::to_string(affected), std::to_string(detours),
                  std::to_string(ripups), std::to_string(vcs),
                  std::to_string(middl)});
    json.AddRow(JsonObject()
                    .Set("section", "source_summary")
                    .Set("source", name)
                    .Set("trials", trials)
                    .Set("reconfigured", reconf)
                    .Set("disconnected", disc)
                    .Set("mismatch", mism)
                    .Set("affected_flows", affected)
                    .Set("table_detours", detours)
                    .Set("ripup_reroutes", ripups)
                    .Set("removal_vcs_added", vcs)
                    .Set("midflight_deadlocks", middl));
  }
  table.Print(std::cout);
  std::cout << "\n"
            << result.rows.size() << " trials in "
            << FormatDouble(campaign_ms, 1) << " ms: " << result.reconfigured
            << " reconfigured, " << result.disconnected << " disconnected, "
            << result.mismatches << " mismatches; digest " << std::hex
            << result.digest << std::dec << "\n";

  // Replayable context for every mismatch.
  for (const valid::FaultTrialRow& row : result.rows) {
    if (row.verdict != valid::FaultVerdict::kMismatch) {
      continue;
    }
    std::cout << "MISMATCH trial " << row.trial_index << " ("
              << valid::SourceName(row.source) << ", design seed "
              << row.design_seed << "): " << row.mismatch << "\n"
              << "  replay: --replay-source " << valid::SourceName(row.source)
              << " --replay-seed " << row.design_seed << "\n";
    const std::string path =
        "fault_repro_trial" + std::to_string(row.trial_index) + ".json";
    std::ofstream out(path);
    out << valid::FaultRowToJson(row).Dump() << "\n";
    std::cout << "  row dumped to " << path << "\n";
  }

  // Thread-count determinism: the digest must not depend on scheduling.
  bool deterministic = true;
  if (opts.check_determinism) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      valid::FaultCampaignConfig alt = opts.campaign;
      alt.threads = threads;
      const valid::FaultCampaignResult rerun = valid::RunFaultCampaign(alt);
      const bool match = rerun.digest == result.digest;
      deterministic = deterministic && match;
      std::cout << "determinism check (" << threads << " threads): digest "
                << std::hex << rerun.digest << std::dec
                << (match ? " OK" : " MISMATCH (bug!)") << "\n";
    }
  }

  bool perf_mismatch = false;
  double largest_speedup = 0.0;
  if (opts.perf) {
    largest_speedup = RunPerfLadder(json, perf_mismatch);
  }

  json.AddRow(JsonObject()
                  .Set("section", "campaign")
                  .Set("trials", result.rows.size())
                  .Set("base_seed", opts.campaign.base_seed)
                  .Set("sources", opts.campaign.sources.size())
                  .Set("reconfigured", result.reconfigured)
                  .Set("disconnected", result.disconnected)
                  .Set("mismatches", result.mismatches)
                  .Set("digest", result.digest)
                  .Set("deterministic", deterministic)
                  .Set("campaign_ms", campaign_ms)
                  .Set("largest_design_speedup", largest_speedup));
  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  const bool perf_failed =
      opts.perf && (perf_mismatch || largest_speedup <= 1.0);
  return (result.mismatches != 0 || !deterministic || perf_failed) ? 1 : 0;
}
