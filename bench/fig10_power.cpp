// Experiment E4 — Figure 10: normalized NoC power consumption across the
// six SoC benchmarks at 14 switches, resource ordering vs. the removal
// algorithm (removal normalized to 1.0, as in the paper's plot).
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== E4 / Figure 10: normalized power, all benchmarks @ 14 "
               "switches ===\n\n";

  TextTable table;
  table.SetHeader({"benchmark", "removal (norm)", "ordering (norm)",
                   "removal mW", "ordering mW", "ordering overhead"});
  double overhead_sum = 0.0;
  int points = 0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    const std::size_t switches = 14;
    const auto point = bench::Compare(b.traffic, b.name, switches);
    const double norm = point.ordering.power_mw / point.removal.power_mw;
    table.AddRow({b.name, "1.000", FormatDouble(norm, 3),
                  FormatDouble(point.removal.power_mw, 1),
                  FormatDouble(point.ordering.power_mw, 1),
                  FormatDouble(100.0 * (norm - 1.0), 1) + "%"});
    overhead_sum += norm - 1.0;
    ++points;
  }
  table.Print(std::cout);
  std::cout << "\nMean ordering power overhead vs removal: "
            << FormatDouble(100.0 * overhead_sum / points, 1)
            << "% (paper: removal saves 8.6% on average)\n";
  return 0;
}
