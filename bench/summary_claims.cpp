// Experiments E5 + E6 — the paper's Section 5 aggregate claims:
//   * E5: vs. resource ordering, the removal algorithm reduces extra
//     resources by ~88%, NoC area by ~66% and power by ~8.6% on average;
//   * E6: vs. a design with no deadlock handling at all, the removal
//     algorithm costs < 5% area and power.
// All numbers at 14 switches, as in the paper's power/area comparison.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== E5/E6: aggregate resource, area and power claims "
               "(all benchmarks @ 14 switches) ===\n\n";

  TextTable table;
  table.SetHeader({"benchmark", "VCs rem", "VCs ord", "VC red.",
                   "area red.", "power red.", "area ovh vs none",
                   "power ovh vs none"});
  double vc_red_sum = 0, area_red_sum = 0, power_red_sum = 0;
  double area_ovh_sum = 0, power_ovh_sum = 0;
  int points = 0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    const auto p = bench::Compare(b.traffic, b.name, 14);

    const double vc_red =
        p.ordering.vcs_added == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(p.removal.vcs_added) /
                                 static_cast<double>(p.ordering.vcs_added));
    const double area_red =
        100.0 * (1.0 - p.removal.area_um2 / p.ordering.area_um2);
    const double power_red =
        100.0 * (1.0 - p.removal.power_mw / p.ordering.power_mw);
    const double area_ovh =
        100.0 * (p.removal.area_um2 / p.untreated.area_um2 - 1.0);
    const double power_ovh =
        100.0 * (p.removal.power_mw / p.untreated.power_mw - 1.0);

    table.AddRow({b.name, std::to_string(p.removal.vcs_added),
                  std::to_string(p.ordering.vcs_added),
                  FormatDouble(vc_red, 1) + "%",
                  FormatDouble(area_red, 1) + "%",
                  FormatDouble(power_red, 1) + "%",
                  FormatDouble(area_ovh, 2) + "%",
                  FormatDouble(power_ovh, 2) + "%"});
    vc_red_sum += vc_red;
    area_red_sum += area_red;
    power_red_sum += power_red;
    area_ovh_sum += area_ovh;
    power_ovh_sum += power_ovh;
    ++points;
  }
  table.Print(std::cout);

  const double n = points;
  std::cout << "\nAverages across the suite:\n";
  std::cout << "  [E5] VC reduction vs ordering:    "
            << FormatDouble(vc_red_sum / n, 1) << "%   (paper: 88%)\n";
  std::cout << "  [E5] area reduction vs ordering:  "
            << FormatDouble(area_red_sum / n, 1) << "%   (paper: 66%)\n";
  std::cout << "  [E5] power reduction vs ordering: "
            << FormatDouble(power_red_sum / n, 1) << "%   (paper: 8.6%)\n";
  std::cout << "  [E6] area overhead vs untreated:  "
            << FormatDouble(area_ovh_sum / n, 2) << "%   (paper: <5%)\n";
  std::cout << "  [E6] power overhead vs untreated: "
            << FormatDouble(power_ovh_sum / n, 2) << "%   (paper: <5%)\n";
  return 0;
}
