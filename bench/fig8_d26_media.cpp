// Experiment E2 — Figure 8: extra-VC overhead vs. switch count on
// D26_media, resource ordering vs. the deadlock removal algorithm.
//
// Expected shape (paper): the removal algorithm's overhead is zero for
// most switch counts — sparse application-specific designs are often
// deadlock-free as synthesized — while resource ordering pays one channel
// class per hop position on every shared link, a substantial and roughly
// switch-count-correlated overhead.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== E2 / Figure 8: number of extra VCs, D26_media, "
               "switch count 5..25 ===\n\n";
  const auto b = MakeBenchmark(SocBenchmarkId::kD26Media);

  TextTable table;
  table.SetHeader({"switches", "links", "resource ordering",
                   "deadlock removal alg."});
  std::size_t removal_zero = 0, points = 0;
  double removal_sum = 0.0, ordering_sum = 0.0;
  for (std::size_t switches = 5; switches <= 25; ++switches) {
    const auto point = bench::Compare(b.traffic, b.name, switches);
    table.AddRow({std::to_string(switches), std::to_string(point.links),
                  std::to_string(point.ordering.vcs_added),
                  std::to_string(point.removal.vcs_added)});
    removal_zero += point.removal.vcs_added == 0 ? 1 : 0;
    removal_sum += static_cast<double>(point.removal.vcs_added);
    ordering_sum += static_cast<double>(point.ordering.vcs_added);
    ++points;
  }
  table.Print(std::cout);

  std::cout << "\nSeries summary:\n";
  std::cout << "  removal overhead is zero on " << removal_zero << "/"
            << points << " switch counts (paper: most)\n";
  std::cout << "  mean extra VCs: removal " << FormatDouble(
                   removal_sum / static_cast<double>(points), 2)
            << " vs ordering "
            << FormatDouble(ordering_sum / static_cast<double>(points), 2)
            << "\n";
  if (ordering_sum > 0.0) {
    std::cout << "  VC reduction vs ordering: "
              << FormatDouble(100.0 * (1.0 - removal_sum / ordering_sum), 1)
              << "% (paper reports 88% across the suite)\n";
  }
  return 0;
}
