// Experiment E8 — simulation validation of the paper's premise.
//
// For every benchmark at several switch counts: if the synthesized
// design's CDG has a cycle, stress it in the flit-level wormhole
// simulator and record whether it actually freezes; then apply the
// removal algorithm and show the identical workload completes. Designs
// whose CDG is acyclic must never deadlock.
#include <iostream>

#include "bench_common.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace nocdr;

namespace {

SimConfig StressConfig() {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = 3;
  cfg.traffic.packet_length = 10;
  cfg.buffer_depth = 2;
  cfg.max_cycles = 300000;
  cfg.stall_threshold = 2500;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "=== E8: wormhole-simulation validation (stress traffic) "
               "===\n\n";
  TextTable table;
  table.SetHeader({"design", "CDG cyclic", "untreated sim", "after removal",
                   "+VCs"});
  int cyclic_designs = 0, cyclic_froze = 0;
  int acyclic_designs = 0, acyclic_froze = 0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    for (std::size_t switches : {10u, 14u, 18u}) {
      auto design = SynthesizeDesign(b.traffic, b.name, switches);
      const bool cyclic = !IsDeadlockFree(design);
      const auto before = SimulateWorkload(design, StressConfig());
      auto treated = design;
      const auto report = RemoveDeadlocks(treated);
      const auto after = SimulateWorkload(treated, StressConfig());

      table.AddRow(
          {design.name, cyclic ? "yes" : "no",
           before.deadlocked
               ? "DEADLOCK"
               : (before.AllDelivered() ? "completed" : "timeout"),
           after.deadlocked
               ? "DEADLOCK (bug!)"
               : (after.AllDelivered() ? "completed" : "timeout"),
           std::to_string(report.vcs_added)});
      if (cyclic) {
        ++cyclic_designs;
        cyclic_froze += before.deadlocked ? 1 : 0;
      } else {
        ++acyclic_designs;
        acyclic_froze += before.deadlocked ? 1 : 0;
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\nSummary:\n";
  std::cout << "  cyclic-CDG designs that froze under stress: "
            << cyclic_froze << "/" << cyclic_designs
            << " (cycles are necessary, not sufficient)\n";
  std::cout << "  acyclic-CDG designs that froze:             "
            << acyclic_froze << "/" << acyclic_designs
            << " (must be 0 — Dally/Towles guarantee)\n";
  return 0;
}
