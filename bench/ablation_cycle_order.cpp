// Ablation A1 — the smallest-cycle-first heuristic.
//
// The paper breaks the smallest CDG cycle first, arguing a short cycle
// often shares edges with longer ones so one break can kill several
// cycles. This harness compares smallest-first against first-found and
// largest-first cycle selection on deadlock-prone designs: total VCs
// added and iterations taken.
#include <iostream>

#include "bench_common.h"
#include "test_support_designs.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== A1: cycle-selection policy ablation ===\n\n";
  TextTable table;
  table.SetHeader({"design", "smallest: VCs", "iters", "first: VCs",
                   "iters", "largest: VCs", "iters"});

  std::size_t total[3] = {0, 0, 0};
  const CyclePolicy policies[3] = {CyclePolicy::kSmallestFirst,
                                   CyclePolicy::kFirstFound,
                                   CyclePolicy::kLargestFirst};
  for (const auto& [name, make] : bench::DeadlockProneDesigns()) {
    std::vector<std::string> row = {name};
    for (int pi = 0; pi < 3; ++pi) {
      NocDesign d = make();
      RemovalOptions options;
      options.cycle_policy = policies[pi];
      const auto report = RemoveDeadlocks(d, options);
      row.push_back(std::to_string(report.vcs_added));
      row.push_back(std::to_string(report.iterations));
      total[pi] += report.vcs_added;
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nTotal VCs added: smallest-first " << total[0]
            << ", first-found " << total[1] << ", largest-first " << total[2]
            << "\n";
  std::cout << "(The paper's smallest-first choice should be no worse than "
               "the alternatives in aggregate.)\n";
  return 0;
}
