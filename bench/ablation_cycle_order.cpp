// Ablation A1 — the smallest-cycle-first heuristic.
//
// The paper breaks the smallest CDG cycle first, arguing a short cycle
// often shares edges with longer ones so one break can kill several
// cycles. This harness compares smallest-first against first-found and
// largest-first cycle selection on deadlock-prone designs — one
// SweepRunner batch, one job per (design, policy) — reporting total VCs
// added and iterations taken. Rows land in BENCH_ablation_cycle_order.json.
#include <iostream>

#include "bench_common.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== A1: cycle-selection policy ablation ===\n\n";

  std::vector<bench::AblationArm> arms(3);
  arms[0].label = "smallest";
  arms[0].options.cycle_policy = CyclePolicy::kSmallestFirst;
  arms[1].label = "first";
  arms[1].options.cycle_policy = CyclePolicy::kFirstFound;
  arms[2].label = "largest";
  arms[2].options.cycle_policy = CyclePolicy::kLargestFirst;

  const auto corpus = bench::DeadlockProneDesigns();
  const auto rows = bench::RunCorpusSweep(corpus, arms);

  TextTable table;
  table.SetHeader({"design", "smallest: VCs", "iters", "first: VCs", "iters",
                   "largest: VCs", "iters"});
  BenchJsonWriter json("ablation_cycle_order");
  std::size_t total[3] = {0, 0, 0};
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    std::vector<std::string> cells = {corpus[d].first};
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const runner::SweepRow& row = rows[arms.size() * d + a];
      if (bench::RowFailed(row)) {
        return 1;
      }
      cells.push_back(std::to_string(row.vcs_added));
      cells.push_back(std::to_string(row.iterations));
      total[a] += row.vcs_added;
      json.AddRow(runner::RowToJson(row));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
  std::cout << "\nTotal VCs added: smallest-first " << total[0]
            << ", first-found " << total[1] << ", largest-first " << total[2]
            << "\n";
  std::cout << "(The paper's smallest-first choice should be no worse than "
               "the alternatives in aggregate.)\n";
  if (const std::string path = json.Write(); !path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return 0;
}
