// Experiment E11 — standard topology families under classical routing.
//
// The paper's pitch is that application-specific topologies beat
// structured ones on deadlock-handling cost. This harness runs the
// structured families themselves (src/gen): per (family, size, pattern)
// point it measures
//   * whether the family's classical policy is statically safe
//     (mesh XY and fat-tree up/down: yes; torus/ring shortest-way
//     wrap routing: no — those rows MUST need cycle breaking),
//   * the extra-VC cost and runtime of the removal algorithm vs the
//     resource-ordering baseline vs up*/down* re-routing,
//   * steady-state simulator throughput and latency on the
//     removal-treated design.
// Rows land in BENCH_topology_families.json (sections "family_point"
// and "family_summary") for the CI perf gate to diff against
// bench/baselines/.
//
// Exit code 0 iff every treated design certifies deadlock-free AND the
// deliberately cyclic rows (torus/ring under uniform traffic) really
// did require cycle breaking.
//
// Flags:
//   --uniform-fanout N  flows per core under the uniform pattern
//                       (default 4 — the baseline-gated density; lower
//                       values may legitimately fail the must-be-cyclic
//                       assertion)
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "deadlock/updown.h"
#include "gen/generators.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct FamilyPoint {
  gen::GeneratorSpec spec;
  std::string size_label;
};

std::vector<FamilyPoint> MakePoints(std::size_t uniform_fanout) {
  std::vector<FamilyPoint> points;
  const auto add = [&points, uniform_fanout](gen::GeneratorSpec spec,
                                             const std::string& size_label) {
    // The default fanout 4 keeps the uniform pattern dense enough that
    // wrapped shortest-way routing on the torus/ring points is reliably
    // cyclic; lower values exercise the sparse regime (and may fail the
    // must-be-cyclic assertion by design).
    spec.uniform_fanout = uniform_fanout;
    for (const gen::TrafficPattern pattern : gen::AllPatterns()) {
      spec.pattern = pattern;
      points.push_back({spec, size_label});
    }
  };
  gen::GeneratorSpec mesh;
  mesh.family = gen::TopologyFamily::kMesh2D;
  mesh.width = mesh.height = 6;
  add(mesh, "small");
  mesh.width = mesh.height = 10;
  add(mesh, "large");

  gen::GeneratorSpec torus;
  torus.family = gen::TopologyFamily::kTorus2D;
  torus.width = torus.height = 5;
  add(torus, "small");
  torus.width = torus.height = 8;
  add(torus, "large");

  gen::GeneratorSpec ring;
  ring.family = gen::TopologyFamily::kRing;
  ring.ring_nodes = 16;
  add(ring, "small");
  ring.ring_nodes = 48;
  add(ring, "large");

  gen::GeneratorSpec tree;
  tree.family = gen::TopologyFamily::kFatTree;
  tree.tree_arity = 2;
  tree.tree_levels = 4;
  tree.tree_uplinks = 2;
  add(tree, "small");
  tree.tree_arity = 4;
  tree.tree_levels = 3;
  add(tree, "large");
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t uniform_fanout = 4;
  bench::FlagParser flags("bench_topology_families");
  flags.AddSize("--uniform-fanout", &uniform_fanout);
  flags.Parse(argc, argv);
  if (uniform_fanout == 0) {
    flags.Fail("--uniform-fanout must be >= 1");
  }

  std::cout << "=== E11: standard topology families, classical routing "
               "===\n\n";
  BenchJsonWriter json("topology_families");
  TextTable table;
  table.SetHeader({"family", "size", "pattern", "sw", "flows", "cyclic",
                   "rm VCs", "rm (ms)", "ord VCs", "u/d infl",
                   "thr (f/cyc)", "avg lat"});

  bool failed = false;
  struct FamilyAgg {
    std::size_t points = 0;
    std::size_t cyclic = 0;
    std::size_t removal_vcs = 0;
    std::size_t ordering_vcs = 0;
    double removal_ms = 0.0;
  };
  std::vector<std::pair<std::string, FamilyAgg>> aggregates;
  const auto agg_of = [&aggregates](const std::string& family) -> FamilyAgg& {
    for (auto& [name, agg] : aggregates) {
      if (name == family) {
        return agg;
      }
    }
    aggregates.emplace_back(family, FamilyAgg{});
    return aggregates.back().second;
  };

  for (const FamilyPoint& point : MakePoints(uniform_fanout)) {
    const std::string family = gen::FamilyName(point.spec.family);
    const std::string pattern = gen::PatternName(point.spec.pattern);
    const NocDesign base = gen::GenerateStandardDesign(point.spec);
    const bool cyclic = !IsDeadlockFree(base);

    NocDesign removal_design = base;
    const auto t0 = std::chrono::steady_clock::now();
    const RemovalReport removal = RemoveDeadlocks(removal_design);
    const double removal_ms = MillisSince(t0);

    NocDesign ordering_design = base;
    const ResourceOrderingReport ordering =
        ApplyResourceOrdering(ordering_design);

    // Up*/down* is always feasible on these families (every link has
    // its reverse), but keep the probe honest.
    NocDesign updown_design = base;
    bool updown_feasible = true;
    double updown_inflation = 1.0;
    try {
      const UpDownReport updown = ApplyUpDownRouting(updown_design);
      updown_inflation = updown.HopInflation();
    } catch (const TurnProhibitionInfeasibleError&) {
      updown_feasible = false;
    }

    if (!IsDeadlockFree(removal_design) ||
        !IsDeadlockFree(ordering_design) ||
        (updown_feasible && !IsDeadlockFree(updown_design))) {
      std::cout << "BUG: a treated " << base.name << " still has a CDG "
                << "cycle\n";
      failed = true;
    }
    // The adversarial claim this family expansion exists for: wrapped
    // shortest-way routing on torus and ring is NOT statically safe
    // under uniform traffic, so cycle breaking must have real cost.
    const bool must_be_cyclic =
        (point.spec.family == gen::TopologyFamily::kTorus2D ||
         point.spec.family == gen::TopologyFamily::kRing) &&
        point.spec.pattern == gen::TrafficPattern::kUniform;
    if (must_be_cyclic && (!cyclic || removal.vcs_added == 0)) {
      std::cout << "BUG: " << base.name
                << " was expected to need cycle breaking (cyclic="
                << cyclic << ", removal VCs=" << removal.vcs_added << ")\n";
      failed = true;
    }
    if ((point.spec.family == gen::TopologyFamily::kMesh2D ||
         point.spec.family == gen::TopologyFamily::kFatTree) &&
        cyclic) {
      std::cout << "BUG: " << base.name
                << " should be deadlock-free by construction\n";
      failed = true;
    }

    // Steady-state throughput/latency on the removal-treated design.
    SimConfig sim_cfg;
    sim_cfg.buffer_depth = 2;
    sim_cfg.max_cycles = 20000;
    sim_cfg.traffic.mode = InjectionMode::kBernoulli;
    sim_cfg.traffic.reference_injection_rate = 0.02;
    sim_cfg.traffic.packet_length = 5;
    sim_cfg.traffic.seed = point.spec.seed;
    const SimResult sim = SimulateWorkload(removal_design, sim_cfg);
    if (sim.deadlocked) {
      std::cout << "BUG: treated " << base.name << " deadlocked in "
                << "steady-state simulation\n";
      failed = true;
    }
    const double throughput =
        sim.cycles > 0
            ? static_cast<double>(sim.flits_delivered) /
                  static_cast<double>(sim.cycles)
            : 0.0;

    table.AddRow({family, point.size_label, pattern,
                  std::to_string(base.topology.SwitchCount()),
                  std::to_string(base.traffic.FlowCount()),
                  cyclic ? "yes" : "no",
                  std::to_string(removal.vcs_added),
                  FormatDouble(removal_ms, 2),
                  std::to_string(ordering.vcs_added),
                  FormatDouble(updown_inflation, 2),
                  FormatDouble(throughput, 3),
                  FormatDouble(sim.avg_packet_latency, 1)});
    json.AddRow(JsonObject()
                    .Set("section", "family_point")
                    .Set("family", family)
                    .Set("size", point.size_label)
                    .Set("pattern", pattern)
                    .Set("design", base.name)
                    .Set("switches", base.topology.SwitchCount())
                    .Set("links", base.topology.LinkCount())
                    .Set("flows", base.traffic.FlowCount())
                    .Set("cyclic", cyclic)
                    .Set("removal_vcs", removal.vcs_added)
                    .Set("removal_iterations", removal.iterations)
                    .Set("removal_ms", removal_ms)
                    .Set("ordering_vcs", ordering.vcs_added)
                    .Set("updown_feasible", updown_feasible)
                    .Set("updown_hop_inflation", updown_inflation)
                    .Set("sim_cycles", sim.cycles)
                    .Set("packets_offered", sim.packets_offered)
                    .Set("packets_delivered", sim.packets_delivered)
                    .Set("throughput_flits_per_cycle", throughput)
                    .Set("avg_packet_latency", sim.avg_packet_latency));
    FamilyAgg& agg = agg_of(family);
    ++agg.points;
    agg.cyclic += cyclic;
    agg.removal_vcs += removal.vcs_added;
    agg.ordering_vcs += ordering.vcs_added;
    agg.removal_ms += removal_ms;
  }
  table.Print(std::cout);

  std::cout << "\n";
  for (const auto& [family, agg] : aggregates) {
    std::cout << family << ": " << agg.cyclic << "/" << agg.points
              << " cyclic points, removal " << agg.removal_vcs
              << " VCs total vs ordering " << agg.ordering_vcs << " ("
              << FormatDouble(agg.removal_ms, 1) << " ms removal)\n";
    json.AddRow(JsonObject()
                    .Set("section", "family_summary")
                    .Set("family", family)
                    .Set("points", agg.points)
                    .Set("cyclic_points", agg.cyclic)
                    .Set("removal_vcs", agg.removal_vcs)
                    .Set("ordering_vcs", agg.ordering_vcs)
                    .Set("removal_ms", agg.removal_ms));
  }

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return failed ? 1 : 0;
}
