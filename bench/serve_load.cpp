// Open-loop load benchmark for the certification service: seeded
// arrival traces (Poisson / bursty MMPP) replayed on deterministic
// virtual time through the pluggable scheduling layer, then executed
// for real against a live service.
//
// Where bench_serve drives closed-loop mixes (the next request waits
// for the previous response), this harness models what operators
// actually face: requests arrive when the trace says so, queues build
// when service lags, and the p99 virtual latency is the SLO number. The
// grid is (arrival process x queue discipline x class mix); every cell
// emits:
//   * serve_load          — served / rejected split, p50/p90/p99/max
//                           virtual latency, goodput, utilization, the
//                           replay latency digest and the real-serve
//                           response digests. All virtual-time metrics
//                           are bit-identical across machines and
//                           thread counts; the p99 row is baseline-gated
//                           in CI (one-sided: regressions fail, being
//                           faster passes).
//   * serve_load_fairness — per-class counters for the "classes" mix
//                           (weighted token admission): arrivals,
//                           served, token/queue rejections, mean wait.
//   * serve_load_determinism — with --check-determinism, replays every
//                           cell's real-serve pass at 1 and 3 client
//                           threads and requires identical combined
//                           digests (the load_gen contract, end to end).
//
// The corpus spans all five campaign design sources plus live
// reconfiguration sessions: a slice of trace arrivals are fault_burst
// messages applied to sessions opened at cell start (replays are
// idempotent, so a trace may hit the same burst twice and stay
// deterministic).
//
// Flags:
//   --requests N        arrivals per cell trace (default 400)
//   --designs U         unique stateless designs (default 12)
//   --sessions S        live sessions, one burst item each (default 2)
//   --seed S            base seed (default 1)
//   --rate R            mean arrival rate per virtual second
//                       (default 20000 — deliberately overloading, so
//                       disciplines actually reorder the queue)
//   --servers N         virtual service slots in the replay (default 4)
//   --queue-capacity N  ready-queue bound (default 64)
//   --threads T         compute-pool threads, 0 = hardware (default 0)
//   --client-threads C  real-serve client threads (default 0 = pool)
//   --check-determinism rerun every cell at 1 and 3 client threads,
//                       require identical combined digests
//
// Exit code: 0 iff every real response was kOk, every cell served a
// non-empty stream, and all determinism digests matched.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/plan.h"
#include "runner/sweep.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/canonical.h"
#include "util/json.h"
#include "util/table.h"
#include "valid/campaign.h"

using namespace nocdr;

namespace {

using bench::MillisSince;
using serve::load::ArrivalConfig;
using serve::load::ArrivalKind;
using serve::load::OpenLoopOutcome;
using serve::load::ReplayConfig;
using serve::load::TraceClassMix;
using serve::load::TraceItem;
using serve::load::WorkItem;
using serve::sched::Discipline;

struct Options {
  std::size_t requests = 400;
  std::size_t designs = 12;
  std::size_t sessions = 2;
  std::uint64_t seed = 1;
  std::uint64_t rate = 20000;
  std::size_t servers = 4;
  std::size_t queue_capacity = 64;
  std::size_t threads = 0;
  std::size_t client_threads = 0;
  bool check_determinism = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_serve_load");
  flags.AddSize("--requests", &opts.requests);
  flags.AddSize("--designs", &opts.designs);
  flags.AddSize("--sessions", &opts.sessions);
  flags.AddUint64("--seed", &opts.seed);
  flags.AddUint64("--rate", &opts.rate);
  flags.AddSize("--servers", &opts.servers);
  flags.AddSize("--queue-capacity", &opts.queue_capacity);
  flags.AddSize("--threads", &opts.threads);
  flags.AddSize("--client-threads", &opts.client_threads);
  flags.AddSwitch("--check-determinism", &opts.check_determinism);
  flags.Parse(argc, argv);
  if (opts.requests == 0 || opts.designs == 0 || opts.rate == 0 ||
      opts.servers == 0) {
    flags.Fail("--requests, --designs, --rate and --servers must be positive");
  }
  return opts;
}

/// One class mix of the grid: trace shares + the admission policy the
/// replay runs under.
struct MixSpec {
  std::string name;
  std::vector<TraceClassMix> classes;
  serve::sched::AdmissionConfig admission;
};

std::vector<MixSpec> BuildMixes(const Options& opts) {
  MixSpec open;
  open.name = "open";  // one class, no token policy: pure queueing

  MixSpec classes;
  classes.name = "classes";
  classes.classes = {TraceClassMix{"interactive", 0, 3.0},
                     TraceClassMix{"batch", 2, 1.0}};
  classes.admission.enabled = true;
  // Half the offered rate in tokens with a small burst: the budget is
  // the bottleneck on purpose, so rejections and the per-class split
  // show up in the fairness rows.
  classes.admission.tokens_per_sec = static_cast<double>(opts.rate) * 0.5;
  classes.admission.burst =
      std::max(4.0, static_cast<double>(opts.requests) / 10.0);
  classes.admission.classes = {
      serve::sched::ClassConfig{"interactive", 0, 3.0},
      serve::sched::ClassConfig{"batch", 2, 1.0}};
  return {open, classes};
}

/// The stateless slice of the corpus, pre-rendered once: design text
/// requests round-robining the five campaign sources, with their cost
/// model values.
struct CorpusSeed {
  std::vector<std::string> design_texts;
  std::vector<std::uint64_t> costs;
};

CorpusSeed BuildCorpusSeed(const Options& opts) {
  const valid::DesignEnvelope envelope;
  const std::vector<valid::DesignSource> sources = valid::AllSources();
  CorpusSeed seed;
  for (std::size_t d = 0; d < opts.designs; ++d) {
    const valid::DesignSource source = sources[d % sources.size()];
    const NocDesign design = valid::GenerateTrialDesign(
        source, runner::JobSeed(opts.seed, d), envelope);
    seed.design_texts.push_back(DesignText(design));
    seed.costs.push_back(serve::sched::EstimateCost(design));
  }
  return seed;
}

/// Names the first burst of a seeded fault plan for \p design, protocol
/// style. Empty when nothing survives naming.
std::vector<serve::SessionEventSpec> NamedBurst(const NocDesign& design,
                                                std::uint64_t seed) {
  fault::FaultPlanOptions options;
  options.bursts = 1;
  const fault::FaultPlan plan = fault::DrawFaultPlan(design, seed, options);
  std::vector<serve::SessionEventSpec> specs;
  for (const fault::FaultEvent& event : plan.bursts.empty()
                                            ? fault::FaultBurst{}
                                            : plan.bursts.front()) {
    if (event.kind == fault::FaultKind::kSwitch) {
      serve::SessionEventSpec spec;
      spec.kind = fault::FaultKind::kSwitch;
      spec.switch_name = design.topology.SwitchName(event.switch_id);
      specs.push_back(spec);
    } else {
      const Link& link = design.topology.LinkAt(event.link);
      serve::SessionEventSpec spec;
      spec.kind = fault::FaultKind::kLink;
      spec.src = design.topology.SwitchName(link.src);
      spec.dst = design.topology.SwitchName(link.dst);
      specs.push_back(spec);
    }
  }
  return specs;
}

/// One cell run: fresh service + sessions, open-loop trace, replay and
/// real-serve pass.
OpenLoopOutcome RunCell(const Options& opts, const CorpusSeed& corpus_seed,
                        const MixSpec& mix, ArrivalKind arrival_kind,
                        Discipline discipline, std::uint64_t trace_seed,
                        std::size_t client_threads, std::size_t* bad_out) {
  serve::ServiceConfig service_config;
  service_config.threads = opts.threads;
  serve::CertificationService service(service_config);
  serve::SessionService sessions(service);

  std::vector<WorkItem> corpus;
  for (std::size_t d = 0; d < corpus_seed.design_texts.size(); ++d) {
    WorkItem item;
    item.certify.id = "d" + std::to_string(d);
    item.certify.kind = serve::RequestKind::kDesignText;
    item.certify.design_text = corpus_seed.design_texts[d];
    item.cost = corpus_seed.costs[d];
    corpus.push_back(std::move(item));
  }
  // Session slice: one burst work item per opened session. The open
  // itself happens outside the trace (sessions exist before load hits).
  const valid::DesignEnvelope envelope;
  for (std::size_t s = 0; s < opts.sessions; ++s) {
    serve::SessionRequest open;
    open.op = serve::SessionOp::kOpen;
    open.id = "open" + std::to_string(s);
    open.spec.kind = serve::RequestKind::kSourceSeed;
    open.spec.source = valid::DesignSource::kMesh;
    open.spec.seed = runner::JobSeed(opts.seed + 1000, s);
    const NocDesign design =
        serve::MaterializeDesign(open.spec, envelope, nullptr);
    const serve::SessionResponse opened = sessions.Handle(open);
    if (opened.status != serve::ServeStatus::kOk) {
      ++*bad_out;
      continue;
    }
    const std::vector<serve::SessionEventSpec> events =
        NamedBurst(design, runner::JobSeed(opts.seed + 2000, s));
    if (events.empty()) {
      continue;
    }
    WorkItem item;
    item.is_session = true;
    item.burst.op = serve::SessionOp::kBurst;
    item.burst.id = "burst" + std::to_string(s);
    item.burst.session_id = opened.session_id;
    item.burst.events = events;
    item.cost = serve::sched::EstimateCost(design);
    corpus.push_back(std::move(item));
  }

  ArrivalConfig arrival;
  arrival.kind = arrival_kind;
  arrival.rate_per_sec = static_cast<double>(opts.rate);
  const std::vector<TraceItem> trace = serve::load::GenerateTrace(
      arrival, opts.requests, corpus.size(), mix.classes, trace_seed);

  ReplayConfig replay;
  replay.discipline = discipline;
  replay.servers = opts.servers;
  replay.queue_capacity = opts.queue_capacity;
  replay.seed = opts.seed;
  replay.admission = mix.admission;

  const OpenLoopOutcome outcome = serve::load::RunOpenLoop(
      service, &sessions, corpus, trace, replay, client_threads);
  *bad_out += outcome.bad_responses;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  bool failed = false;
  BenchJsonWriter json("serve_load");

  std::cout << "=== open-loop service load: " << opts.requests
            << " arrivals/cell at " << opts.rate << "/s over "
            << opts.designs << " designs + " << opts.sessions
            << " sessions, " << opts.servers << " virtual servers, seed "
            << opts.seed << " ===\n\n";

  const CorpusSeed corpus_seed = BuildCorpusSeed(opts);
  const std::vector<MixSpec> mixes = BuildMixes(opts);

  TextTable table;
  table.SetHeader({"arrival", "discipline", "mix", "served", "rej_tok",
                   "rej_queue", "p50us", "p99us", "goodput/s", "util",
                   "wall_ms"});

  const std::vector<ArrivalKind> arrivals = serve::load::AllArrivalKinds();
  for (std::size_t a = 0; a < arrivals.size(); ++a) {
    const ArrivalKind arrival_kind = arrivals[a];
    for (const Discipline discipline : serve::sched::AllDisciplines()) {
      for (std::size_t m = 0; m < mixes.size(); ++m) {
        const MixSpec& mix = mixes[m];
        const std::string arrival_name =
            serve::load::ArrivalKindName(arrival_kind);
        const std::string discipline_name =
            serve::sched::DisciplineName(discipline);
        // One trace per (arrival, mix): disciplines replay the *same*
        // arrivals, so their rows differ only by scheduling.
        const std::uint64_t trace_seed =
            runner::JobSeed(opts.seed, a * 16 + m);

        std::size_t bad = 0;
        const auto t0 = std::chrono::steady_clock::now();
        const OpenLoopOutcome outcome =
            RunCell(opts, corpus_seed, mix, arrival_kind, discipline,
                    trace_seed, opts.client_threads, &bad);
        const double wall_ms = MillisSince(t0);
        const serve::load::LoadReport& report = outcome.report;

        if (bad != 0) {
          std::cout << "CELL FAILED: " << arrival_name << "/"
                    << discipline_name << "/" << mix.name << ": " << bad
                    << " bad responses\n";
          failed = true;
        }
        if (report.served == 0) {
          std::cout << "CELL FAILED: " << arrival_name << "/"
                    << discipline_name << "/" << mix.name
                    << ": nothing served\n";
          failed = true;
        }

        table.AddRow({arrival_name, discipline_name, mix.name,
                      std::to_string(report.served),
                      std::to_string(report.rejected_tokens),
                      std::to_string(report.rejected_queue),
                      std::to_string(report.latency.p50),
                      std::to_string(report.latency.p99),
                      FormatDouble(report.goodput_per_sec, 0),
                      FormatDouble(report.utilization, 3),
                      FormatDouble(wall_ms, 1)});
        json.AddRow(
            JsonObject()
                .Set("section", "serve_load")
                .Set("arrival", arrival_name)
                .Set("discipline", discipline_name)
                .Set("mix", mix.name)
                .Set("requests", opts.requests)
                .Set("served", report.served)
                .Set("rejected_tokens", report.rejected_tokens)
                .Set("rejected_queue", report.rejected_queue)
                .Set("p50_latency_us", report.latency.p50)
                .Set("p90_latency_us", report.latency.p90)
                .Set("p99_latency_us", report.latency.p99)
                .Set("max_latency_us", report.latency.max)
                .Set("goodput_per_sec", report.goodput_per_sec)
                .Set("utilization", report.utilization)
                .Set("latency_digest", report.digest)
                .Set("responses_digest", outcome.response_digest)
                .Set("combined_digest", outcome.combined_digest)
                .Set("wall_ms", wall_ms));

        if (mix.name == "classes") {
          for (const serve::load::ClassLoadStats& c : report.classes) {
            if (c.arrivals == 0) {
              continue;
            }
            const double mean_wait =
                c.served == 0 ? 0.0
                              : static_cast<double>(c.total_wait_us) /
                                    static_cast<double>(c.served);
            json.AddRow(JsonObject()
                            .Set("section", "serve_load_fairness")
                            .Set("arrival", arrival_name)
                            .Set("discipline", discipline_name)
                            .Set("class", c.name)
                            .Set("rank", c.rank)
                            .Set("arrivals", c.arrivals)
                            .Set("served", c.served)
                            .Set("rejected_tokens", c.rejected_tokens)
                            .Set("rejected_queue", c.rejected_queue)
                            .Set("mean_wait_us", mean_wait)
                            .Set("max_wait_us", c.max_wait_us));
          }
        }

        if (opts.check_determinism) {
          std::size_t bad_one = 0;
          std::size_t bad_three = 0;
          const OpenLoopOutcome one =
              RunCell(opts, corpus_seed, mix, arrival_kind, discipline,
                      trace_seed, 1, &bad_one);
          const OpenLoopOutcome three =
              RunCell(opts, corpus_seed, mix, arrival_kind, discipline,
                      trace_seed, 3, &bad_three);
          const bool match =
              one.combined_digest == three.combined_digest &&
              one.combined_digest == outcome.combined_digest &&
              bad_one == 0 && bad_three == 0;
          if (!match) {
            std::cout << "DETERMINISM FAILED: " << arrival_name << "/"
                      << discipline_name << "/" << mix.name << "\n";
            failed = true;
          }
          json.AddRow(JsonObject()
                          .Set("section", "serve_load_determinism")
                          .Set("arrival", arrival_name)
                          .Set("discipline", discipline_name)
                          .Set("mix", mix.name)
                          .Set("digests_match", match));
        }
      }
    }
  }

  table.Print(std::cout);
  std::cout << "\n";

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "wrote " << json.RowCount() << " rows to " << path << "\n";
  }
  std::cout << (failed ? "FAILED\n" : "OK\n");
  return failed ? 1 : 0;
}
