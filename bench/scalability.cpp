// Experiment E10 — scalability beyond the paper's suite.
//
// The paper claims the method "is scalable" and finishes "within minutes
// even for the largest benchmark" (38 cores, 2010 hardware). This harness
// pushes far past that with the synthetic SoC generator: core counts up
// to ~10x the paper's largest. Runs as one SweepRunner batch — three arms
// per size (incremental removal, rebuild-baseline removal, resource
// ordering) — reporting problem size, wall-clock of both engines, the
// dirty-search workload, and the VC overhead of both methods. Rows land
// in BENCH_scalability.json.
#include <iostream>

#include "bench_common.h"
#include "gen/generators.h"
#include "runner/sweep.h"
#include "soc/synthetic.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== E10: scalability sweep (synthetic SoCs, fan-out 4) "
               "===\n\n";

  const std::vector<std::size_t> core_counts = {36, 72, 144, 288};
  std::vector<runner::SweepJob> jobs;
  for (std::size_t cores : core_counts) {
    auto factory = [cores](Rng&) {
      SyntheticSocSpec spec;
      spec.cores = cores;
      spec.fanout = 4;
      spec.hubs = cores / 24;
      const auto b = MakeSyntheticSoc(spec);
      return SynthesizeDesign(b.traffic, b.name, cores / 3);
    };
    const std::string name = "S" + std::to_string(cores);
    runner::SweepJob incremental{name, "incremental", factory, {},
                                 runner::SweepMethod::kRemoval};
    runner::SweepJob rebuild{name, "rebuild", factory, {},
                             runner::SweepMethod::kRemoval};
    rebuild.options.engine = RemovalEngine::kRebuild;
    runner::SweepJob ordering{name, "ordering", factory, {},
                              runner::SweepMethod::kResourceOrdering};
    jobs.push_back(std::move(incremental));
    jobs.push_back(std::move(rebuild));
    jobs.push_back(std::move(ordering));
  }

  // One worker: the run_ms columns feed the published speedup numbers,
  // and timing arms must not contend with each other for cores. The
  // parallel-throughput story (with its digest check) lives in
  // bench_perf_runtime.
  const auto rows = runner::SweepRunner({.threads = 1}).Run(jobs);

  TextTable table;
  table.SetHeader({"cores", "switches", "links", "flows", "synth (ms)",
                   "removal (ms)", "rebuild (ms)", "speedup", "BFS runs",
                   "removal VCs", "ordering VCs"});
  BenchJsonWriter json("scalability");
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    const runner::SweepRow& inc = rows[3 * i];
    const runner::SweepRow& reb = rows[3 * i + 1];
    const runner::SweepRow& ord = rows[3 * i + 2];
    for (const runner::SweepRow* row : {&inc, &reb, &ord}) {
      if (!row->error.empty()) {
        std::cout << "JOB FAILED: " << row->design << "/" << row->variant
                  << ": " << row->error << "\n";
        return 1;
      }
      if (!row->deadlock_free) {
        std::cout << "BUG: " << row->design << "/" << row->variant
                  << " left a cycle\n";
        return 1;
      }
      json.AddRow(runner::RowToJson(*row));
    }
    if (inc.vcs_added != reb.vcs_added ||
        inc.iterations != reb.iterations) {
      std::cout << "BUG: engines disagree on " << inc.design << "\n";
      return 1;
    }
    table.AddRow({std::to_string(core_counts[i]),
                  std::to_string(inc.switches), std::to_string(inc.links),
                  std::to_string(inc.flows), FormatDouble(inc.factory_ms, 1),
                  FormatDouble(inc.run_ms, 1), FormatDouble(reb.run_ms, 1),
                  FormatDouble(inc.run_ms > 0 ? reb.run_ms / inc.run_ms : 0,
                               1) +
                      "x",
                  std::to_string(inc.cycle_bfs_runs),
                  std::to_string(inc.vcs_added),
                  std::to_string(ord.vcs_added)});
  }
  table.Print(std::cout);

  // ---------------------------------------------------------------------
  // Generated standard families at growing scale: the same three arms on
  // uniform-traffic mesh/torus/ring/fat-tree designs an order of
  // magnitude past the campaign envelope. The torus and ring rows are
  // the interesting ones — wrapped shortest-way routing is cyclic, so
  // the removal loop has real work on a structured design distribution
  // the synthesizer never produces.
  std::cout << "\n=== generated standard families (uniform traffic) ===\n\n";
  std::vector<gen::GeneratorSpec> family_specs;
  {
    gen::GeneratorSpec spec;
    spec.uniform_fanout = 4;
    spec.family = gen::TopologyFamily::kMesh2D;
    spec.width = spec.height = 12;
    family_specs.push_back(spec);
    spec.family = gen::TopologyFamily::kTorus2D;
    spec.width = spec.height = 10;
    family_specs.push_back(spec);
    spec.family = gen::TopologyFamily::kRing;
    spec.ring_nodes = 96;
    family_specs.push_back(spec);
    spec.family = gen::TopologyFamily::kFatTree;
    spec.tree_arity = 4;
    spec.tree_levels = 4;
    spec.tree_uplinks = 2;
    family_specs.push_back(spec);
  }
  std::vector<runner::SweepJob> family_jobs;
  for (const gen::GeneratorSpec& spec : family_specs) {
    auto factory = [spec](Rng&) { return gen::GenerateStandardDesign(spec); };
    const std::string name = gen::FamilyShapeName(spec);
    runner::SweepJob incremental{name, "incremental", factory, {},
                                 runner::SweepMethod::kRemoval};
    runner::SweepJob rebuild{name, "rebuild", factory, {},
                             runner::SweepMethod::kRemoval};
    rebuild.options.engine = RemovalEngine::kRebuild;
    runner::SweepJob ordering{name, "ordering", factory, {},
                              runner::SweepMethod::kResourceOrdering};
    family_jobs.push_back(std::move(incremental));
    family_jobs.push_back(std::move(rebuild));
    family_jobs.push_back(std::move(ordering));
  }
  const auto family_rows = runner::SweepRunner({.threads = 1}).Run(family_jobs);

  TextTable family_table;
  family_table.SetHeader({"family", "switches", "links", "flows",
                          "removal (ms)", "rebuild (ms)", "removal VCs",
                          "ordering VCs"});
  for (std::size_t i = 0; i < family_specs.size(); ++i) {
    const runner::SweepRow& inc = family_rows[3 * i];
    const runner::SweepRow& reb = family_rows[3 * i + 1];
    const runner::SweepRow& ord = family_rows[3 * i + 2];
    for (const runner::SweepRow* row : {&inc, &reb, &ord}) {
      if (!row->error.empty()) {
        std::cout << "JOB FAILED: " << row->design << "/" << row->variant
                  << ": " << row->error << "\n";
        return 1;
      }
      if (!row->deadlock_free) {
        std::cout << "BUG: " << row->design << "/" << row->variant
                  << " left a cycle\n";
        return 1;
      }
      json.AddRow(runner::RowToJson(*row));
    }
    if (inc.vcs_added != reb.vcs_added || inc.iterations != reb.iterations) {
      std::cout << "BUG: engines disagree on " << inc.design << "\n";
      return 1;
    }
    family_table.AddRow(
        {inc.design, std::to_string(inc.switches), std::to_string(inc.links),
         std::to_string(inc.flows), FormatDouble(inc.run_ms, 1),
         FormatDouble(reb.run_ms, 1), std::to_string(inc.vcs_added),
         std::to_string(ord.vcs_added)});
  }
  family_table.Print(std::cout);

  const std::string path = json.Write();
  std::cout << "\nThe paper's largest benchmark has 38 cores; the removal "
               "loop stays interactive almost an order of magnitude\n"
               "beyond that, the incremental engine widens its lead as "
               "designs grow, and the VC advantage over resource\n"
               "ordering persists at every scale — including on the "
               "structured mesh/torus/ring/fat-tree families.\n";
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return 0;
}
