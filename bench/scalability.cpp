// Experiment E10 — scalability beyond the paper's suite.
//
// The paper claims the method "is scalable" and finishes "within minutes
// even for the largest benchmark" (38 cores, 2010 hardware). This harness
// pushes far past that with the synthetic SoC generator: core counts up
// to ~10x the paper's largest, reporting problem size, wall-clock time of
// synthesis and removal, and the VC overhead of both methods.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "soc/synthetic.h"
#include "util/table.h"

using namespace nocdr;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::cout << "=== E10: scalability sweep (synthetic SoCs, fan-out 4) "
               "===\n\n";
  TextTable table;
  table.SetHeader({"cores", "switches", "links", "flows", "synth (ms)",
                   "removal (ms)", "removal VCs", "ordering VCs"});
  for (std::size_t cores : {36u, 72u, 144u, 288u}) {
    SyntheticSocSpec spec;
    spec.cores = cores;
    spec.fanout = 4;
    spec.hubs = cores / 24;
    const auto b = MakeSyntheticSoc(spec);
    const std::size_t switches = cores / 3;

    auto t0 = std::chrono::steady_clock::now();
    auto removal_design = SynthesizeDesign(b.traffic, b.name, switches);
    const double synth_ms = MillisSince(t0);
    auto ordering_design = removal_design;
    const std::size_t links = removal_design.topology.LinkCount();
    const std::size_t flows = removal_design.traffic.FlowCount();

    t0 = std::chrono::steady_clock::now();
    const auto removal = RemoveDeadlocks(removal_design);
    const double removal_ms = MillisSince(t0);
    const auto ordering = ApplyResourceOrdering(ordering_design);

    if (!IsDeadlockFree(removal_design)) {
      std::cout << "BUG: removal left a cycle at " << cores << " cores\n";
      return 1;
    }
    table.AddRow({std::to_string(cores), std::to_string(switches),
                  std::to_string(links), std::to_string(flows),
                  FormatDouble(synth_ms, 1), FormatDouble(removal_ms, 1),
                  std::to_string(removal.vcs_added),
                  std::to_string(ordering.vcs_added)});
  }
  table.Print(std::cout);
  std::cout << "\nThe paper's largest benchmark has 38 cores; the removal "
               "loop stays interactive almost an order of magnitude\n"
               "beyond that, and the VC advantage over resource ordering "
               "persists at every scale.\n";
  return 0;
}
