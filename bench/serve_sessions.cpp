// Streaming-session harness: protocol v2 sessions end to end, and the
// economics that justify them.
//
// Emits the BENCH rows the perf gate pins:
//   * session_campaign — the differential session campaign
//     (src/valid/session_campaign): a real SessionService streamed a
//     seeded fault plan per trial, held byte-for-byte to a stateless
//     replay (cold re-serve per epoch, cache-coherence probe,
//     independent checker, codec round trips, lifecycle fences).
//     Any mismatch fails the binary.
//   * session_determinism — the campaign digest at 1 and 3 worker
//     threads must be identical (--check-determinism).
//   * session_delta — the ladder: per design rung, K fault bursts
//     streamed through a live session (incremental re-route +
//     re-certify on the maintained CDG) vs. the stateless alternative
//     the session replaces — rebuild the design client-side, render it
//     to text and re-submit the whole problem. Both sides end each
//     epoch holding the same certificate (checked byte for byte).
//   * session_summary — the headline: speedup of the largest rung;
//     baseline-gated by CI and >= 1.5x for this binary to exit 0.
//
// Flags:
//   --trials N           campaign trials (default 500)
//   --seed S             base seed (default 1)
//   --threads T          campaign worker threads, 0 = hardware
//   --bursts K           fault bursts per perf round (default 10)
//   --rounds R           perf rounds per rung (default 3)
//   --no-perf            skip the session-delta ladder
//   --check-determinism  rerun a campaign slice at 1 and 3 threads,
//                        require identical digests
//
// Exit code: 0 iff the campaign had zero mismatches, every perf burst
// was feasible with byte-identical certificates on both sides, all
// determinism digests matched and (unless --no-perf) the headline
// speedup is >= 1.5x.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/plan.h"
#include "fault/reconfigure.h"
#include "gen/generators.h"
#include "noc/io.h"
#include "runner/sweep.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/canonical.h"
#include "util/json.h"
#include "util/table.h"
#include "valid/session_campaign.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct Options {
  std::size_t trials = 500;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t bursts = 10;
  std::size_t rounds = 3;
  bool perf = true;
  bool check_determinism = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_serve_sessions");
  bool no_perf = false;
  flags.AddSize("--trials", &opts.trials);
  flags.AddUint64("--seed", &opts.seed);
  flags.AddSize("--threads", &opts.threads);
  flags.AddSize("--bursts", &opts.bursts);
  flags.AddSize("--rounds", &opts.rounds);
  flags.AddSwitch("--no-perf", &no_perf);
  flags.AddSwitch("--check-determinism", &opts.check_determinism);
  flags.Parse(argc, argv);
  opts.perf = !no_perf;
  if (opts.trials == 0 || opts.bursts == 0 || opts.rounds == 0) {
    flags.Fail("--trials, --bursts and --rounds must be positive");
  }
  return opts;
}

/// Always-guarded plans: every drawn event provably keeps all
/// attachment switches mutually reachable, so every perf burst is
/// feasible and the two passes never diverge on an infeasible answer.
fault::FaultPlanOptions PerfPlan(std::size_t bursts) {
  fault::FaultPlanOptions plan;
  plan.bursts = bursts;
  plan.max_links_per_burst = 2;
  plan.switch_fault_probability = 0.15;
  plan.disconnect_tolerance = 0.0;
  return plan;
}

/// The plan's events, named by switch names — the only form a protocol
/// client can stream them in. Unnamed events are dropped from both
/// passes.
std::vector<std::vector<serve::SessionEventSpec>> NamePlan(
    const NocDesign& design, const fault::FaultPlan& plan,
    std::vector<fault::FaultBurst>& kept) {
  std::vector<std::vector<serve::SessionEventSpec>> specs;
  for (const fault::FaultBurst& burst : plan.bursts) {
    std::vector<serve::SessionEventSpec> burst_specs;
    fault::FaultBurst burst_kept;
    for (const fault::FaultEvent& event : burst) {
      if (event.kind == fault::FaultKind::kSwitch) {
        const std::string& name =
            design.topology.SwitchName(event.switch_id);
        if (name.empty()) {
          continue;
        }
        serve::SessionEventSpec spec;
        spec.kind = fault::FaultKind::kSwitch;
        spec.switch_name = name;
        burst_specs.push_back(spec);
      } else {
        const Link& link = design.topology.LinkAt(event.link);
        const std::string& src = design.topology.SwitchName(link.src);
        const std::string& dst = design.topology.SwitchName(link.dst);
        if (src.empty() || dst.empty()) {
          continue;
        }
        serve::SessionEventSpec spec;
        spec.kind = fault::FaultKind::kLink;
        spec.src = src;
        spec.dst = dst;
        burst_specs.push_back(spec);
      }
      burst_kept.push_back(event);
    }
    if (!burst_specs.empty()) {
      specs.push_back(std::move(burst_specs));
      kept.push_back(std::move(burst_kept));
    }
  }
  return specs;
}

struct RungOutcome {
  bool failed = false;
  double speedup = 0.0;
};

/// One ladder rung: stream --rounds seeded fault plans through a live
/// session, then replay each plan the stateless way — rebuild the
/// design client-side, render to text, re-submit — and compare wall
/// clock and final certificates.
RungOutcome RunRung(const gen::GeneratorSpec& spec, const Options& opts,
                    BenchJsonWriter& json, TextTable& table) {
  RungOutcome outcome;
  NextHopTable base_table;
  const NocDesign base = gen::GenerateStandardDesign(spec, &base_table);

  serve::ServiceConfig session_config;
  session_config.threads = 1;
  serve::CertificationService session_service(session_config);
  serve::SessionService sessions(session_service);
  serve::ServiceConfig stateless_config;
  stateless_config.threads = 1;
  serve::CertificationService stateless_service(stateless_config);

  double session_ms = 0.0;
  double stateless_ms = 0.0;
  std::size_t bursts_run = 0;
  bool certificates_match = true;
  std::size_t flows = 0;

  for (std::size_t round = 0; round < opts.rounds; ++round) {
    // Open (untimed): the session's epoch-0 state is the treated,
    // canonicalized design; the stateless client starts from the same
    // bytes.
    serve::SessionRequest open_request;
    open_request.op = serve::SessionOp::kOpen;
    open_request.id = "open";
    open_request.spec.kind = serve::RequestKind::kGeneratorSpec;
    open_request.spec.generator = spec;
    open_request.return_design = true;
    const serve::SessionResponse open = sessions.Handle(open_request);
    if (open.status != serve::ServeStatus::kOk) {
      std::cout << "RUNG FAILED: session_open: " << open.error.message
                << "\n";
      outcome.failed = true;
      return outcome;
    }

    std::istringstream stream(open.design_text);
    NocDesign replica = ReadDesign(stream);
    flows = replica.traffic.FlowCount();
    fault::FaultState state = fault::FaultState::None(replica);
    NextHopTable table = base_table;
    fault::ReconfigureOptions reconfigure;
    reconfigure.table = table.empty() ? nullptr : &table;

    // A fresh plan per round, so the stateless pass never gets a
    // cache hit on a design it already re-submitted last round.
    const fault::FaultPlan plan = fault::DrawFaultPlan(
        replica, runner::JobSeed(opts.seed, 0xbe57 + round),
        PerfPlan(opts.bursts));
    std::vector<fault::FaultBurst> bursts;
    const std::vector<std::vector<serve::SessionEventSpec>> specs =
        NamePlan(replica, plan, bursts);

    // ---- streamed pass: one fault_burst message per burst ----
    std::string session_certificate;
    const auto t_session = std::chrono::steady_clock::now();
    for (std::size_t b = 0; b < specs.size(); ++b) {
      serve::SessionRequest request;
      request.op = serve::SessionOp::kBurst;
      request.id = "b" + std::to_string(b);
      request.session_id = open.session_id;
      request.events = specs[b];
      const serve::SessionResponse reply = sessions.Handle(request);
      if (reply.status != serve::ServeStatus::kOk || !reply.feasible) {
        std::cout << "RUNG FAILED: burst " << b
                  << " not applied: " << reply.error.message << "\n";
        outcome.failed = true;
        return outcome;
      }
      session_certificate = reply.certificate_json;
    }
    session_ms += MillisSince(t_session);

    // ---- stateless pass: rebuild + render + re-submit per burst ----
    std::string stateless_certificate;
    const auto t_stateless = std::chrono::steady_clock::now();
    for (const fault::FaultBurst& burst : bursts) {
      const fault::ReconfigureReport report =
          fault::ApplyFaultBurstRebuild(replica, state, burst, reconfigure);
      if (report.infeasible()) {
        std::cout << "RUNG FAILED: stateless pass hit an infeasible "
                     "burst the session applied\n";
        outcome.failed = true;
        return outcome;
      }
      serve::CertRequest resubmit;
      resubmit.kind = serve::RequestKind::kDesignText;
      resubmit.design_text = DesignText(replica);
      const serve::CertResponse reply = stateless_service.Serve(resubmit);
      if (reply.status != serve::ServeStatus::kOk || !reply.deadlock_free) {
        std::cout << "RUNG FAILED: stateless re-submission failed: "
                  << reply.error.message << "\n";
        outcome.failed = true;
        return outcome;
      }
      stateless_certificate = reply.certificate_json;
    }
    stateless_ms += MillisSince(t_stateless);
    bursts_run += bursts.size();

    // Same faults, same design — the two paths must hold the same
    // certificate at the end of the stream.
    certificates_match =
        certificates_match && session_certificate == stateless_certificate;

    serve::SessionRequest close_request;
    close_request.op = serve::SessionOp::kClose;
    close_request.session_id = open.session_id;
    sessions.Handle(close_request);
  }

  outcome.speedup = session_ms > 0.0 ? stateless_ms / session_ms : 0.0;
  outcome.failed = outcome.failed || !certificates_match;
  const double per_burst_session =
      bursts_run != 0 ? session_ms / static_cast<double>(bursts_run) : 0.0;
  const double per_burst_stateless =
      bursts_run != 0 ? stateless_ms / static_cast<double>(bursts_run) : 0.0;
  table.AddRow({base.name, std::to_string(base.topology.SwitchCount()),
                std::to_string(flows), std::to_string(bursts_run),
                FormatDouble(per_burst_session, 3),
                FormatDouble(per_burst_stateless, 3),
                FormatDouble(outcome.speedup, 2),
                certificates_match ? "identical" : "DIVERGED (bug!)"});
  json.AddRow(JsonObject()
                  .Set("section", "session_delta")
                  .Set("design", base.name)
                  .Set("switches", base.topology.SwitchCount())
                  .Set("links", base.topology.LinkCount())
                  .Set("flows", flows)
                  .Set("rounds", opts.rounds)
                  .Set("bursts", bursts_run)
                  .Set("session_ms", session_ms)
                  .Set("stateless_ms", stateless_ms)
                  .Set("session_ms_per_burst", per_burst_session)
                  .Set("stateless_ms_per_burst", per_burst_stateless)
                  .Set("certificates_match", certificates_match)
                  .Set("speedup", outcome.speedup));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  bool failed = false;
  BenchJsonWriter json("serve_sessions");

  // ---- differential session campaign ----
  valid::SessionCampaignConfig config;
  config.trials = opts.trials;
  config.base_seed = opts.seed;
  config.threads = opts.threads;
  std::cout << "=== streaming-session campaign: " << config.trials
            << " trials (5 sources), seed " << config.base_seed
            << " ===\n\n";
  const auto t_campaign = std::chrono::steady_clock::now();
  const valid::SessionCampaignResult campaign =
      valid::RunSessionCampaign(config);
  const double campaign_ms = MillisSince(t_campaign);

  std::size_t events_unnamed = 0;
  std::size_t epochs = 0;
  for (const valid::SessionTrialRow& row : campaign.rows) {
    events_unnamed += row.events_unnamed;
    epochs += row.bursts_streamed;
    if (row.verdict == valid::SessionVerdict::kMismatch) {
      std::cout << "MISMATCH trial " << row.trial_index << " ("
                << row.design << ", seed " << row.design_seed
                << "): " << row.mismatch << "\n";
    }
  }
  std::cout << campaign.streamed << " streamed / " << campaign.disconnected
            << " disconnected / " << campaign.mismatches << " mismatches; "
            << epochs << " epochs advanced, " << events_unnamed
            << " events unnamed; digest " << campaign.digest << " ("
            << FormatDouble(campaign_ms, 0) << " ms)\n";
  json.AddRow(JsonObject()
                  .Set("section", "session_campaign")
                  .Set("trials", campaign.rows.size())
                  .Set("streamed", campaign.streamed)
                  .Set("disconnected", campaign.disconnected)
                  .Set("mismatches", campaign.mismatches)
                  .Set("epochs", epochs)
                  .Set("events_unnamed", events_unnamed)
                  .Set("digest", campaign.digest)
                  .Set("campaign_ms", campaign_ms));
  failed = failed || campaign.mismatches != 0;

  // ---- thread-count determinism of the campaign digest ----
  if (opts.check_determinism) {
    valid::SessionCampaignConfig slice = config;
    slice.trials = std::max<std::size_t>(10, opts.trials / 5);
    std::uint64_t reference = 0;
    bool deterministic = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      slice.threads = threads;
      const std::uint64_t digest =
          valid::RunSessionCampaign(slice).digest;
      if (threads == 1) {
        reference = digest;
      }
      const bool match = digest == reference;
      deterministic = deterministic && match;
      std::cout << "determinism check (" << threads
                << " threads): digest " << digest
                << (match ? " OK" : " MISMATCH (bug!)") << "\n";
    }
    json.AddRow(JsonObject()
                    .Set("section", "session_determinism")
                    .Set("trials", slice.trials)
                    .Set("digest", reference)
                    .Set("digests_match", deterministic));
    failed = failed || !deterministic;
  }

  // ---- the session-delta ladder ----
  if (opts.perf) {
    std::cout << "\n=== session-delta vs stateless re-submission: "
              << opts.bursts << " bursts x " << opts.rounds
              << " rounds per rung ===\n\n";
    TextTable table;
    table.SetHeader({"design", "switches", "flows", "bursts",
                     "session_ms/burst", "stateless_ms/burst", "speedup",
                     "final certs"});

    std::vector<gen::GeneratorSpec> rungs;
    {
      gen::GeneratorSpec mesh;
      mesh.family = gen::TopologyFamily::kMesh2D;
      mesh.width = 8;
      mesh.height = 8;
      rungs.push_back(mesh);
      gen::GeneratorSpec torus;
      torus.family = gen::TopologyFamily::kTorus2D;
      torus.width = 10;
      torus.height = 10;
      rungs.push_back(torus);
      gen::GeneratorSpec big;
      big.family = gen::TopologyFamily::kMesh2D;
      big.width = 16;
      big.height = 16;
      rungs.push_back(big);
    }
    double headline = 0.0;
    for (const gen::GeneratorSpec& spec : rungs) {
      const RungOutcome outcome = RunRung(spec, opts, json, table);
      failed = failed || outcome.failed;
      headline = outcome.speedup;  // last rung = largest design
    }
    table.Print(std::cout);

    std::cout << "\nheadline (largest rung): session_delta_speedup "
              << FormatDouble(headline, 2)
              << "x (gate: >= 1.5x; baseline-gated by CI)\n";
    json.AddRow(JsonObject()
                    .Set("section", "session_summary")
                    .Set("bursts_per_round", opts.bursts)
                    .Set("rounds", opts.rounds)
                    .Set("session_delta_speedup", headline));
    failed = failed || headline < 1.5;
  }

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return failed ? 1 : 0;
}
