// Extension experiment E9 — latency vs. offered load in simulation,
// plus the event-engine speedup gate.
//
// Part 1 is classic NoC evaluation the paper's venue expects around its
// method: after deadlock handling, how does the network behave under
// increasing load? Sweeps the Bernoulli injection rate on D36_8 @ 14
// switches for both deadlock-free designs (removal algorithm vs.
// resource ordering) and reports average packet latency and delivery
// rate. The removal design has fewer VCs (cheaper) yet — since both run
// the same physical routes — serves comparable latency until
// saturation.
//
// Part 2 gates the discrete-event engine's reason to exist: on the
// largest generated mesh designs under light steady-state Bernoulli
// traffic over a long horizon, SimEngine::kEvent must beat the worklist
// engine by >= 10x wall clock while producing bit-identical results.
// Both engines consume the same pre-built TrafficSchedule so the shared
// O(flows x horizon) schedule synthesis stays out of the measurement.
// Rows land in BENCH_sim_latency_curve.json (section
// "event_engine_speedup") for the tools/bench_compare.py perf gate.
//
// Flags:
//   --repeats N    best-of-N wall clock per engine point (default 3)
//   --no-speedup   latency curve only: skip part 2 and write no BENCH
//                  rows (quick local iteration; not for gated runs)
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "gen/generators.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

SimResult RunAt(const NocDesign& design, double rate) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kBernoulli;
  cfg.traffic.packet_length = 5;
  cfg.traffic.reference_injection_rate = rate;
  cfg.traffic.seed = 7;
  cfg.buffer_depth = 4;
  cfg.max_cycles = 30000;
  cfg.stall_threshold = 5000;
  return SimulateWorkload(design, cfg);
}

/// Best-of-N wall clock of one engine over a pre-built schedule; the
/// result of the last repetition is handed back for cross-checking.
double TimeEngine(const NocDesign& design, SimConfig config,
                  const TrafficSchedule& schedule, SimEngine engine,
                  std::size_t repeats, SimResult* result_out) {
  config.engine = engine;
  double best = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    SimResult result = SimulateWorkload(design, config, schedule);
    const double ms = MillisSince(t0);
    if (rep == 0 || ms < best) {
      best = ms;
    }
    *result_out = std::move(result);
  }
  return best;
}

/// Light steady-state traffic on the largest generated meshes: the idle
/// cycles between packets are exactly what the event engine skips.
/// Returns the smallest per-design event-vs-worklist speedup.
double MeasureEventEngineSpeedup(BenchJsonWriter& json,
                                 std::size_t repeats) {
  std::cout << "\n=== event engine vs worklist, light steady-state "
               "Bernoulli, 1M-cycle horizon ===\n\n";
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kBernoulli;
  cfg.traffic.reference_injection_rate = 0.0000001;
  cfg.traffic.packet_length = 4;
  cfg.traffic.seed = 11;
  cfg.buffer_depth = 4;
  cfg.max_cycles = 1000000;
  cfg.stall_threshold = 2000;

  double min_speedup = 0.0;
  TextTable table;
  table.SetHeader({"design", "channels", "flows", "packets",
                   "worklist (ms)", "event (ms)", "speedup"});
  for (const std::size_t extent : {std::size_t{16}, std::size_t{20}}) {
    gen::GeneratorSpec spec;
    spec.family = gen::TopologyFamily::kMesh2D;
    spec.width = extent;
    spec.height = extent;
    spec.cores_per_switch = 1;
    spec.pattern = gen::TrafficPattern::kUniform;
    spec.uniform_fanout = 2;
    spec.seed = 21;
    NocDesign design = gen::GenerateStandardDesign(spec);
    RemoveDeadlocks(design);

    const TrafficSchedule schedule(design, cfg.traffic, cfg.max_cycles);
    SimResult worklist_result, event_result;
    const double worklist_ms = TimeEngine(design, cfg, schedule,
                                          SimEngine::kWorklist, repeats,
                                          &worklist_result);
    const double event_ms = TimeEngine(design, cfg, schedule,
                                       SimEngine::kEvent, repeats,
                                       &event_result);
    if (worklist_result.deadlocked || event_result.deadlocked ||
        worklist_result.cycles != event_result.cycles ||
        worklist_result.packets_delivered !=
            event_result.packets_delivered ||
        worklist_result.flits_delivered != event_result.flits_delivered) {
      std::cout << "ENGINE DISAGREEMENT on " << design.name
                << " (worklist " << worklist_result.packets_delivered
                << " pkts / " << worklist_result.cycles << " cyc, event "
                << event_result.packets_delivered << " pkts / "
                << event_result.cycles << " cyc)\n";
      return 0.0;
    }
    const double speedup = event_ms > 0.0 ? worklist_ms / event_ms : 0.0;
    min_speedup =
        min_speedup == 0.0 ? speedup : std::min(min_speedup, speedup);
    table.AddRow({design.name,
                  std::to_string(design.topology.ChannelCount()),
                  std::to_string(design.traffic.FlowCount()),
                  std::to_string(event_result.packets_delivered),
                  FormatDouble(worklist_ms, 2), FormatDouble(event_ms, 2),
                  FormatDouble(speedup, 1) + "x"});
    json.AddRow(JsonObject()
                    .Set("section", "event_engine_speedup")
                    .Set("design", design.name)
                    .Set("channels", design.topology.ChannelCount())
                    .Set("flows", design.traffic.FlowCount())
                    .Set("packets_delivered",
                         event_result.packets_delivered)
                    .Set("cycles", event_result.cycles)
                    .Set("worklist_ms", worklist_ms)
                    .Set("event_ms", event_ms)
                    .Set("event_engine_speedup", speedup));
  }
  table.Print(std::cout);
  std::cout << "minimum event engine speedup "
            << FormatDouble(min_speedup, 1) << "x (target >= 10x)\n";
  return min_speedup;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repeats = 3;
  bool no_speedup = false;
  bench::FlagParser flags("bench_sim_latency_curve");
  flags.AddSize("--repeats", &repeats);
  flags.AddSwitch("--no-speedup", &no_speedup);
  flags.Parse(argc, argv);
  if (repeats == 0) {
    flags.Fail("--repeats must be >= 1");
  }

  std::cout << "=== E9: latency vs offered load, D36_8 @ 14 switches "
               "(5-flit packets, Bernoulli) ===\n\n";
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto base = SynthesizeDesign(b.traffic, b.name, 14);
  auto removal_design = base;
  auto ordering_design = base;
  RemoveDeadlocks(removal_design);
  ApplyResourceOrdering(ordering_design);
  std::cout << "removal design: " << removal_design.topology.ExtraVcCount()
            << " extra VCs; ordering design: "
            << ordering_design.topology.ExtraVcCount() << " extra VCs\n\n";

  TextTable table;
  table.SetHeader({"inj. rate", "removal: latency", "delivered",
                   "ordering: latency", "delivered"});
  for (double rate : {0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}) {
    const auto rm = RunAt(removal_design, rate);
    const auto ro = RunAt(ordering_design, rate);
    auto delivered = [](const SimResult& r) {
      return r.packets_offered == 0
                 ? std::string("-")
                 : FormatDouble(100.0 *
                                    static_cast<double>(r.packets_delivered) /
                                    static_cast<double>(r.packets_offered),
                                1) +
                       "%";
    };
    table.AddRow({FormatDouble(rate, 4),
                  FormatDouble(rm.avg_packet_latency, 1) + " cyc",
                  delivered(rm),
                  FormatDouble(ro.avg_packet_latency, 1) + " cyc",
                  delivered(ro)});
    if (rm.deadlocked || ro.deadlocked) {
      std::cout << "UNEXPECTED DEADLOCK at rate " << rate << "\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "\nNeither design may ever deadlock (both CDGs are "
               "acyclic); the delivery-rate drop at high load is\n"
               "saturation, not deadlock. The removal design achieves "
               "this with a fraction of the ordering design's VCs.\n";

  if (no_speedup) {
    // Latency-curve-only run for quick local iteration; no BENCH rows
    // are written, so a baseline compare against this run would fail
    // loudly instead of silently passing on missing coverage.
    return 0;
  }
  BenchJsonWriter json("sim_latency_curve");
  const double min_speedup = MeasureEventEngineSpeedup(json, repeats);
  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  if (min_speedup < 10.0) {
    std::cout << "FAIL: event engine speedup " << FormatDouble(min_speedup, 1)
              << "x below the 10x target\n";
    return 1;
  }
  return 0;
}
