// Extension experiment E9 — latency vs. offered load in simulation.
//
// Classic NoC evaluation the paper's venue expects around its method:
// after deadlock handling, how does the network behave under increasing
// load? Sweeps the Bernoulli injection rate on D36_8 @ 14 switches for
// both deadlock-free designs (removal algorithm vs. resource ordering)
// and reports average packet latency and delivery rate. The removal
// design has fewer VCs (cheaper) yet — since both run the same physical
// routes — serves comparable latency until saturation.
#include <iostream>

#include "bench_common.h"
#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace nocdr;

namespace {

SimResult RunAt(const NocDesign& design, double rate) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kBernoulli;
  cfg.traffic.packet_length = 5;
  cfg.traffic.reference_injection_rate = rate;
  cfg.traffic.seed = 7;
  cfg.buffer_depth = 4;
  cfg.max_cycles = 30000;
  cfg.stall_threshold = 5000;
  return SimulateWorkload(design, cfg);
}

}  // namespace

int main() {
  std::cout << "=== E9: latency vs offered load, D36_8 @ 14 switches "
               "(5-flit packets, Bernoulli) ===\n\n";
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto base = SynthesizeDesign(b.traffic, b.name, 14);
  auto removal_design = base;
  auto ordering_design = base;
  RemoveDeadlocks(removal_design);
  ApplyResourceOrdering(ordering_design);
  std::cout << "removal design: " << removal_design.topology.ExtraVcCount()
            << " extra VCs; ordering design: "
            << ordering_design.topology.ExtraVcCount() << " extra VCs\n\n";

  TextTable table;
  table.SetHeader({"inj. rate", "removal: latency", "delivered",
                   "ordering: latency", "delivered"});
  for (double rate : {0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}) {
    const auto rm = RunAt(removal_design, rate);
    const auto ro = RunAt(ordering_design, rate);
    auto delivered = [](const SimResult& r) {
      return r.packets_offered == 0
                 ? std::string("-")
                 : FormatDouble(100.0 *
                                    static_cast<double>(r.packets_delivered) /
                                    static_cast<double>(r.packets_offered),
                                1) +
                       "%";
    };
    table.AddRow({FormatDouble(rate, 4),
                  FormatDouble(rm.avg_packet_latency, 1) + " cyc",
                  delivered(rm),
                  FormatDouble(ro.avg_packet_latency, 1) + " cyc",
                  delivered(ro)});
    if (rm.deadlocked || ro.deadlocked) {
      std::cout << "UNEXPECTED DEADLOCK at rate " << rate << "\n";
      return 1;
    }
  }
  table.Print(std::cout);
  std::cout << "\nNeither design may ever deadlock (both CDGs are "
               "acyclic); the delivery-rate drop at high load is\n"
               "saturation, not deadlock. The removal design achieves "
               "this with a fraction of the ordering design's VCs.\n";
  return 0;
}
