// Ablation A4 — buffer depth does not fix routing deadlock.
//
// A common misconception: "just make the buffers deeper". In wormhole
// switching a channel is held from head allocation until the tail flit
// leaves it, so depth only changes how much of a stalled worm is stored,
// never whether the circular wait can form — that takes virtual
// cut-through semantics or a dependency-free route set. The removal
// algorithm fixes every depth. This harness sweeps buffer depth on a
// deadlock-prone ring with 12-flit packets.
#include <iostream>

#include "bench_common.h"
#include "deadlock/removal.h"
#include "sim/simulator.h"
#include "test_support_designs.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

namespace {

SimResult RunWithDepth(const NocDesign& design, std::uint16_t depth) {
  SimConfig cfg;
  cfg.traffic.mode = InjectionMode::kFixedCount;
  cfg.traffic.packets_per_flow = 6;
  cfg.traffic.packet_length = 12;
  cfg.buffer_depth = depth;
  cfg.max_cycles = 200000;
  cfg.stall_threshold = 2000;
  return SimulateWorkload(design, cfg);
}

}  // namespace

int main() {
  std::cout << "=== A4: buffer-depth sweep on ring6x2, 12-flit packets "
               "===\n\n";
  TextTable table;
  table.SetHeader({"buffer depth", "untreated ring", "after removal",
                   "removal VCs"});
  BenchJsonWriter json("ablation_buffers");
  for (std::uint16_t depth : {1, 2, 4, 8, 16, 32}) {
    auto untreated = bench::MakeRing(6, 2);
    auto treated = untreated;
    const auto report = RemoveDeadlocks(treated);
    const auto before = RunWithDepth(untreated, depth);
    const auto after = RunWithDepth(treated, depth);
    table.AddRow(
        {std::to_string(depth),
         before.deadlocked
             ? "DEADLOCK"
             : (before.AllDelivered() ? "completed" : "timeout"),
         after.deadlocked
             ? "DEADLOCK (bug!)"
             : (after.AllDelivered() ? "completed" : "timeout"),
         std::to_string(report.vcs_added)});
    json.AddRow(JsonObject()
                    .Set("design", "ring6x2")
                    .Set("buffer_depth", depth)
                    .Set("untreated_deadlocked", before.deadlocked)
                    .Set("treated_deadlocked", after.deadlocked)
                    .Set("treated_all_delivered", after.AllDelivered())
                    .Set("removal_vcs", report.vcs_added));
  }
  table.Print(std::cout);
  if (const std::string path = json.Write(); !path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  std::cout
      << "\nExpected shape: the untreated ring freezes at EVERY depth. "
         "Wormhole channel ownership is released only when the tail\n"
         "flit leaves the channel, so a deeper buffer merely stores more "
         "of the stalled worm — unlike virtual cut-through, it never\n"
         "breaks the cyclic wait. Buffer spend cannot substitute for "
         "dependency-breaking; the one VC the removal algorithm adds\n"
         "fixes all depths, including single-flit buffers.\n";
  return 0;
}
