// Shared helpers for the experiment harnesses in bench/.
//
// Every binary in this directory regenerates one table or figure of the
// paper (see DESIGN.md's experiment index). The helpers here run the two
// competing deadlock-handling methods on a synthesized design and collect
// the quantities the paper plots: extra VCs, switch area, total power.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "power/model.h"
#include "runner/sweep.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_support_designs.h"

namespace nocdr::bench {

/// Milliseconds elapsed since \p start.
inline double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Registration-based command-line parsing for the bench harnesses.
///
/// Every binary in this directory used to hand-roll the same argv loop
/// (next_value / next_number lambdas, the same out-of-range guards, a
/// by-hand usage string). FlagParser centralizes that: register each
/// flag with its target once, Parse() fills the targets, rejects junk
/// values, and derives the usage line from the registrations. Errors
/// print the usage and exit 2, matching the historical behaviour.
class FlagParser {
 public:
  explicit FlagParser(std::string binary) : binary_(std::move(binary)) {}

  /// --flag N (non-negative integer). \p seen, when given, records
  /// whether the flag appeared at all (for flags whose presence matters
  /// beyond their value, e.g. --replay-seed).
  void AddUint64(const std::string& flag, std::uint64_t* target,
                 bool* seen = nullptr) {
    specs_.push_back({flag, Kind::kUint64, target, seen});
  }
  void AddSize(const std::string& flag, std::size_t* target,
               bool* seen = nullptr) {
    specs_.push_back({flag, Kind::kSize, target, seen});
  }

  /// Valueless --flag; presence sets \p target to true.
  void AddSwitch(const std::string& flag, bool* target) {
    specs_.push_back({flag, Kind::kSwitch, target, nullptr});
  }

  /// --flag VALUE (verbatim string).
  void AddString(const std::string& flag, std::string* target,
                 bool* seen = nullptr) {
    specs_.push_back({flag, Kind::kString, target, seen});
  }

  /// Prints the derived usage line plus \p error and exits 2. Public so
  /// call sites can reuse it for their own post-parse validation (list
  /// flags, flag interdependencies).
  [[noreturn]] void Fail(const std::string& error) const {
    std::cerr << binary_ << ": " << error << "\nflags:";
    for (const Spec& spec : specs_) {
      std::cerr << " " << spec.flag;
      if (spec.kind == Kind::kString) {
        std::cerr << " VALUE";
      } else if (spec.kind != Kind::kSwitch) {
        std::cerr << " N";
      }
    }
    std::cerr << "\n";
    std::exit(2);
  }

  void Parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const Spec* match = nullptr;
      for (const Spec& spec : specs_) {
        if (spec.flag == arg) {
          match = &spec;
          break;
        }
      }
      if (match == nullptr) {
        Fail("unknown flag \"" + arg + "\"");
      }
      if (match->seen != nullptr) {
        *match->seen = true;
      }
      if (match->kind == Kind::kSwitch) {
        *static_cast<bool*>(match->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        Fail(arg + " needs a value");
      }
      const std::string value = argv[++i];
      if (match->kind == Kind::kString) {
        *static_cast<std::string*>(match->target) = value;
        continue;
      }
      // Flag values are untrusted; std::stoull would call
      // std::terminate on junk, so reject anything that is not a plain
      // decimal number.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        Fail(arg + " needs a non-negative integer, got \"" + value + "\"");
      }
      std::uint64_t number = 0;
      try {
        number = std::stoull(value);
      } catch (const std::out_of_range&) {
        Fail(arg + " value \"" + value + "\" is out of range");
      }
      if (match->kind == Kind::kUint64) {
        *static_cast<std::uint64_t*>(match->target) = number;
      } else {
        *static_cast<std::size_t*>(match->target) =
            static_cast<std::size_t>(number);
      }
    }
  }

 private:
  enum class Kind { kUint64, kSize, kSwitch, kString };
  struct Spec {
    std::string flag;
    Kind kind;
    void* target;
    bool* seen;
  };

  std::string binary_;
  std::vector<Spec> specs_;
};

/// Splits "a,b,c" into {"a","b","c"}. Interior empty segments are kept
/// ("a,,b" -> {"a","","b"}) so a mangled list fails the caller's name
/// validation loudly instead of being silently narrowed.
inline std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    out.push_back(item);
  }
  return out;
}

/// One arm of a removal-options ablation.
struct AblationArm {
  std::string label;
  RemovalOptions options;
};

/// Runs corpus × arms through SweepRunner; rows come back design-major
/// (rows[d * arms.size() + a] is design d under arm a).
inline std::vector<runner::SweepRow> RunCorpusSweep(
    const std::vector<std::pair<std::string, DesignFactory>>& corpus,
    const std::vector<AblationArm>& arms) {
  std::vector<runner::SweepJob> jobs;
  for (const auto& [name, make] : corpus) {
    for (const AblationArm& arm : arms) {
      runner::SweepJob job;
      job.design = name;
      job.variant = arm.label;
      job.options = arm.options;
      job.factory = [make = make](Rng&) { return make(); };
      jobs.push_back(std::move(job));
    }
  }
  return runner::SweepRunner{}.Run(jobs);
}

/// Prints a diagnostic and returns true if \p row captured an error.
inline bool RowFailed(const runner::SweepRow& row) {
  if (row.error.empty()) {
    return false;
  }
  std::cout << "JOB FAILED: " << row.design << "/" << row.variant << ": "
            << row.error << "\n";
  return true;
}

/// Results of applying one deadlock-handling method.
struct MethodOutcome {
  std::size_t vcs_added = 0;
  double area_um2 = 0.0;
  double power_mw = 0.0;
  bool deadlock_free = false;
};

/// Both methods plus the untreated design, on one (benchmark, switches)
/// point.
struct ComparisonPoint {
  std::string design_name;
  std::size_t switches = 0;
  std::size_t links = 0;
  MethodOutcome untreated;  // vcs_added always 0; may not be deadlock-free
  MethodOutcome removal;
  MethodOutcome ordering;
};

/// Synthesizes `traffic` on `switches` switches and runs both methods.
inline ComparisonPoint Compare(const CommunicationGraph& traffic,
                               const std::string& name,
                               std::size_t switches) {
  ComparisonPoint point;
  point.switches = switches;
  const NocDesign base = SynthesizeDesign(traffic, name, switches);
  point.design_name = base.name;
  point.links = base.topology.LinkCount();

  const auto pa_base = EstimatePowerArea(base);
  point.untreated = {0, pa_base.switch_area_um2, pa_base.TotalPowerMw(),
                     IsDeadlockFree(base)};

  NocDesign removal_design = base;
  const auto removal_report = RemoveDeadlocks(removal_design);
  const auto pa_removal = EstimatePowerArea(removal_design);
  point.removal = {removal_report.vcs_added, pa_removal.switch_area_um2,
                   pa_removal.TotalPowerMw(), IsDeadlockFree(removal_design)};

  NocDesign ordering_design = base;
  const auto ordering_report = ApplyResourceOrdering(ordering_design);
  const auto pa_ordering = EstimatePowerArea(ordering_design);
  point.ordering = {ordering_report.vcs_added, pa_ordering.switch_area_um2,
                    pa_ordering.TotalPowerMw(),
                    IsDeadlockFree(ordering_design)};
  return point;
}

}  // namespace nocdr::bench
