// Shared helpers for the experiment harnesses in bench/.
//
// Every binary in this directory regenerates one table or figure of the
// paper (see DESIGN.md's experiment index). The helpers here run the two
// competing deadlock-handling methods on a synthesized design and collect
// the quantities the paper plots: extra VCs, switch area, total power.
#pragma once

#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "deadlock/removal.h"
#include "deadlock/resource_ordering.h"
#include "power/model.h"
#include "runner/sweep.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "test_support_designs.h"

namespace nocdr::bench {

/// Milliseconds elapsed since \p start.
inline double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One arm of a removal-options ablation.
struct AblationArm {
  std::string label;
  RemovalOptions options;
};

/// Runs corpus × arms through SweepRunner; rows come back design-major
/// (rows[d * arms.size() + a] is design d under arm a).
inline std::vector<runner::SweepRow> RunCorpusSweep(
    const std::vector<std::pair<std::string, DesignFactory>>& corpus,
    const std::vector<AblationArm>& arms) {
  std::vector<runner::SweepJob> jobs;
  for (const auto& [name, make] : corpus) {
    for (const AblationArm& arm : arms) {
      runner::SweepJob job;
      job.design = name;
      job.variant = arm.label;
      job.options = arm.options;
      job.factory = [make = make](Rng&) { return make(); };
      jobs.push_back(std::move(job));
    }
  }
  return runner::SweepRunner{}.Run(jobs);
}

/// Prints a diagnostic and returns true if \p row captured an error.
inline bool RowFailed(const runner::SweepRow& row) {
  if (row.error.empty()) {
    return false;
  }
  std::cout << "JOB FAILED: " << row.design << "/" << row.variant << ": "
            << row.error << "\n";
  return true;
}

/// Results of applying one deadlock-handling method.
struct MethodOutcome {
  std::size_t vcs_added = 0;
  double area_um2 = 0.0;
  double power_mw = 0.0;
  bool deadlock_free = false;
};

/// Both methods plus the untreated design, on one (benchmark, switches)
/// point.
struct ComparisonPoint {
  std::string design_name;
  std::size_t switches = 0;
  std::size_t links = 0;
  MethodOutcome untreated;  // vcs_added always 0; may not be deadlock-free
  MethodOutcome removal;
  MethodOutcome ordering;
};

/// Synthesizes `traffic` on `switches` switches and runs both methods.
inline ComparisonPoint Compare(const CommunicationGraph& traffic,
                               const std::string& name,
                               std::size_t switches) {
  ComparisonPoint point;
  point.switches = switches;
  const NocDesign base = SynthesizeDesign(traffic, name, switches);
  point.design_name = base.name;
  point.links = base.topology.LinkCount();

  const auto pa_base = EstimatePowerArea(base);
  point.untreated = {0, pa_base.switch_area_um2, pa_base.TotalPowerMw(),
                     IsDeadlockFree(base)};

  NocDesign removal_design = base;
  const auto removal_report = RemoveDeadlocks(removal_design);
  const auto pa_removal = EstimatePowerArea(removal_design);
  point.removal = {removal_report.vcs_added, pa_removal.switch_area_um2,
                   pa_removal.TotalPowerMw(), IsDeadlockFree(removal_design)};

  NocDesign ordering_design = base;
  const auto ordering_report = ApplyResourceOrdering(ordering_design);
  const auto pa_ordering = EstimatePowerArea(ordering_design);
  point.ordering = {ordering_report.vcs_added, pa_ordering.switch_area_um2,
                    pa_ordering.TotalPowerMw(),
                    IsDeadlockFree(ordering_design)};
  return point;
}

}  // namespace nocdr::bench
