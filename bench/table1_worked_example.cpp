// Experiment E1 — Table 1 and the Figures 1-7 walkthrough.
//
// Regenerates the paper's worked example: the Figure 2 CDG of the
// Figure 1 ring, the forward-direction cost table (Table 1), the chosen
// break, and the resulting acyclic CDG / modified topology (Figures 3-4).
#include <iostream>

#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "deadlock/cost.h"
#include "deadlock/removal.h"
#include "noc/design.h"
#include "util/table.h"

using namespace nocdr;

namespace {

NocDesign BuildFigure1() {
  NocDesign d;
  d.name = "figure1";
  const SwitchId sw1 = d.topology.AddSwitch("SW1");
  const SwitchId sw2 = d.topology.AddSwitch("SW2");
  const SwitchId sw3 = d.topology.AddSwitch("SW3");
  const SwitchId sw4 = d.topology.AddSwitch("SW4");
  const ChannelId c1 = *d.topology.FindChannel(d.topology.AddLink(sw1, sw2), 0);
  const ChannelId c2 = *d.topology.FindChannel(d.topology.AddLink(sw2, sw3), 0);
  const ChannelId c3 = *d.topology.FindChannel(d.topology.AddLink(sw3, sw4), 0);
  const ChannelId c4 = *d.topology.FindChannel(d.topology.AddLink(sw4, sw1), 0);
  struct Spec {
    SwitchId src, dst;
    Route route;
  };
  const std::vector<Spec> specs = {{sw1, sw4, {c1, c2, c3}},
                                   {sw3, sw1, {c3, c4}},
                                   {sw4, sw2, {c4, c1}},
                                   {sw1, sw3, {c1, c2}}};
  d.routes.Resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const CoreId s = d.traffic.AddCore();
    const CoreId t = d.traffic.AddCore();
    d.attachment.push_back(specs[i].src);
    d.attachment.push_back(specs[i].dst);
    d.routes.SetRoute(d.traffic.AddFlow(s, t, 100.0), specs[i].route);
  }
  d.Validate();
  return d;
}

}  // namespace

int main() {
  std::cout << "=== E1: worked example (paper Section 3, Table 1) ===\n\n";
  NocDesign design = BuildFigure1();

  const auto cdg = ChannelDependencyGraph::Build(design);
  std::cout << "[Figure 2] CDG edges:\n";
  for (const CdgEdge& e : cdg.Edges()) {
    std::cout << "  " << design.topology.ChannelLabel(e.from) << " -> "
              << design.topology.ChannelLabel(e.to) << "   (flows:";
    for (FlowId f : e.flows) {
      std::cout << " F" << f.value() + 1;
    }
    std::cout << ")\n";
  }

  // Use the canonical L1..L4 orientation for the cost table so columns
  // line up with the paper's D1..D4.
  const CdgCycle cycle = {ChannelId(0u), ChannelId(1u), ChannelId(2u),
                          ChannelId(3u)};
  const auto table =
      ComputeCycleCostTable(design, cycle, BreakDirection::kForward);

  std::cout << "\n[Table 1] forward-direction cost table:\n";
  TextTable t;
  t.SetHeader({"", "D1", "D2", "D3", "D4"});
  const char* names[] = {"F1", "F2", "F3", "F4"};
  for (std::size_t r = 0; r < table.cost.size(); ++r) {
    std::vector<std::string> row = {names[table.flows[r].value()]};
    for (std::size_t p = 0; p < 4; ++p) {
      row.push_back(std::to_string(table.cost[r][p]));
    }
    t.AddRow(row);
  }
  std::vector<std::string> maxrow = {"MAX"};
  for (std::size_t p = 0; p < 4; ++p) {
    maxrow.push_back(std::to_string(table.combined[p]));
  }
  t.AddRow(maxrow);
  t.Print(std::cout);
  std::cout << "Paper's Table 1:  F1={1,2,0,0} F2={0,0,1,0} F3={0,0,0,1} "
               "F4={1,0,0,0} MAX={1,2,1,1}\n";

  const auto report = RemoveDeadlocks(design);
  std::cout << "\n[Figures 3-4] " << Summarize(report) << "\n";
  std::cout << "  extra VCs |L'|-|L| = " << design.topology.ExtraVcCount()
            << " (paper: 1)\n";
  std::cout << "  CDG acyclic: " << (IsDeadlockFree(design) ? "yes" : "NO")
            << "\n";
  for (std::size_t i = 0; i < design.traffic.FlowCount(); ++i) {
    std::cout << "  F" << i + 1 << ":";
    for (ChannelId c : design.routes.RouteOf(FlowId(i))) {
      std::cout << " " << design.topology.ChannelLabel(c);
    }
    std::cout << "\n";
  }
  return 0;
}
