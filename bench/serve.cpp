// Certification-service load harness: cache + coalescer under seeded
// multi-client traffic.
//
// Exercises src/serve end to end and emits the BENCH rows the perf gate
// pins:
//   * serve_mix      — per traffic mix (repeat-heavy / uniform /
//                      unique-heavy), served serially so hit / miss /
//                      eviction counts are exact and machine-independent:
//                      requests, hits, misses, computations, hit_rate and
//                      the response payload digest.
//   * serve_eviction — a deliberately tiny single-shard cache driven to
//                      eviction; occupancy must respect both capacity
//                      bounds.
//   * serve_concurrent — duplicate-burst traffic over concurrent client
//                      threads: the coalescer's exactly-once contract
//                      (computations == unique designs) and payload-digest
//                      equality with the serial pass.
//   * serve_summary  — the headline: cold (cache-disabled recompute) vs
//                      warm (all-hit) serving of the repeat-heavy stream;
//                      cache_hit_speedup is baseline-gated and must be
//                      >= 10x for this binary to exit 0.
//
// The request corpus spans all five design sources (synthesized / mesh /
// torus / ring / fat_tree via valid::GenerateTrialDesign), pre-rendered
// to noc/io text outside every timed region.
//
// Flags:
//   --requests N         requests per mix (default 600)
//   --designs U          unique designs in the corpus (default 20)
//   --seed S             base seed (default 1)
//   --threads T          compute-pool threads, 0 = hardware (default 0)
//   --client-threads C   client threads in the concurrent pass
//                        (default 0 = compute-pool width)
//   --no-perf            skip the cold/warm speedup measurement
//   --check-determinism  rerun the concurrent pass at 1 and 3 client
//                        threads, require identical payload digests
//
// Exit code: 0 iff no error/overloaded response, the coalescing pass
// computed each unique design exactly once with payloads identical to
// the serial pass, eviction respected both bounds, all determinism
// digests matched and (unless --no-perf) the hit speedup is >= 10x.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "runner/sweep.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/canonical.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"
#include "valid/campaign.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct Options {
  std::size_t requests = 600;
  std::size_t designs = 20;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t client_threads = 0;
  bool perf = true;
  bool check_determinism = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_serve");
  bool no_perf = false;
  flags.AddSize("--requests", &opts.requests);
  flags.AddSize("--designs", &opts.designs);
  flags.AddUint64("--seed", &opts.seed);
  flags.AddSize("--threads", &opts.threads);
  flags.AddSize("--client-threads", &opts.client_threads);
  flags.AddSwitch("--no-perf", &no_perf);
  flags.AddSwitch("--check-determinism", &opts.check_determinism);
  flags.Parse(argc, argv);
  opts.perf = !no_perf;
  if (opts.requests == 0 || opts.designs == 0) {
    flags.Fail("--requests and --designs must be positive");
  }
  return opts;
}

/// One pre-rendered design request (text form, so serving pays no
/// generation cost inside timed regions).
serve::CertRequest TextRequest(std::string id, std::string design_text) {
  serve::CertRequest request;
  request.id = std::move(id);
  request.kind = serve::RequestKind::kDesignText;
  request.design_text = std::move(design_text);
  return request;
}

/// The unique-design corpus: round-robin over all five design sources.
std::vector<serve::CertRequest> BuildCorpus(std::size_t designs,
                                            std::uint64_t base_seed,
                                            std::uint64_t salt) {
  const valid::DesignEnvelope envelope;
  const std::vector<valid::DesignSource> sources = valid::AllSources();
  std::vector<serve::CertRequest> corpus;
  corpus.reserve(designs);
  for (std::size_t d = 0; d < designs; ++d) {
    const valid::DesignSource source = sources[d % sources.size()];
    const std::uint64_t seed = runner::JobSeed(base_seed + salt, d);
    const NocDesign design = valid::GenerateTrialDesign(source, seed, envelope);
    corpus.push_back(TextRequest("d" + std::to_string(salt) + "_" +
                                     std::to_string(d),
                                 DesignText(design)));
  }
  return corpus;
}

/// repeat_heavy: 80% of requests go to a hot subset of the corpus.
/// uniform: every corpus design equally likely.
std::vector<serve::CertRequest> DrawMix(
    const std::vector<serve::CertRequest>& corpus, std::size_t requests,
    std::uint64_t seed, double hot_fraction) {
  Rng rng(seed);
  const std::size_t hot = std::max<std::size_t>(1, corpus.size() / 5);
  std::vector<serve::CertRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    std::size_t pick = 0;
    if (rng.NextBool(hot_fraction)) {
      pick = rng.NextBelow(hot);
    } else {
      pick = rng.NextBelow(corpus.size());
    }
    stream.push_back(corpus[pick]);
  }
  return stream;
}

/// Duplicate-burst stream for the coalescing pass: runs of identical
/// requests back to back, so concurrent clients land on the same key at
/// the same time.
std::vector<serve::CertRequest> DrawBursts(
    const std::vector<serve::CertRequest>& corpus, std::size_t requests,
    std::uint64_t seed, std::size_t burst) {
  Rng rng(seed);
  std::vector<serve::CertRequest> stream;
  stream.reserve(requests);
  while (stream.size() < requests) {
    const serve::CertRequest& pick = corpus[rng.NextBelow(corpus.size())];
    for (std::size_t i = 0; i < burst && stream.size() < requests; ++i) {
      stream.push_back(pick);
    }
  }
  return stream;
}

std::size_t CountBad(const std::vector<serve::CertResponse>& responses) {
  std::size_t bad = 0;
  for (const serve::CertResponse& response : responses) {
    if (response.status != serve::ServeStatus::kOk) {
      std::cout << "BAD RESPONSE (" << serve::StatusName(response.status)
                << ") id=" << response.id << ": "
                << serve::ErrorCodeName(response.error.code) << ": "
                << response.error.message << "\n";
      ++bad;
    }
  }
  return bad;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[index];
}

std::size_t UniqueKeys(const std::vector<serve::CertResponse>& responses) {
  std::vector<std::uint64_t> keys;
  keys.reserve(responses.size());
  for (const serve::CertResponse& response : responses) {
    keys.push_back(response.key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys.size();
}

struct MixOutcome {
  std::uint64_t digest = 0;
  std::size_t bad = 0;
};

/// Serves \p stream serially on a fresh service and emits the
/// deterministic serve_mix row.
MixOutcome RunSerialMix(const std::string& mix_name,
                        const std::vector<serve::CertRequest>& stream,
                        std::size_t threads, BenchJsonWriter& json,
                        TextTable& table) {
  serve::ServiceConfig config;
  config.threads = threads;
  serve::CertificationService service(config);
  std::vector<serve::CertResponse> responses;
  responses.reserve(stream.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const serve::CertRequest& request : stream) {
    responses.push_back(service.Serve(request));
  }
  const double serve_ms = MillisSince(t0);

  const serve::ServiceStats stats = service.Stats();
  std::vector<double> latencies;
  latencies.reserve(responses.size());
  for (const serve::CertResponse& response : responses) {
    latencies.push_back(response.service_ms);
  }
  MixOutcome outcome;
  outcome.digest = serve::ResponseDigest(responses);
  outcome.bad = CountBad(responses);
  const std::size_t unique = UniqueKeys(responses);
  const double hit_rate =
      static_cast<double>(stats.hits) / static_cast<double>(stream.size());
  table.AddRow({mix_name, std::to_string(stream.size()),
                std::to_string(unique), std::to_string(stats.hits),
                std::to_string(stats.cache.misses),
                std::to_string(stats.computations),
                FormatDouble(hit_rate, 3), FormatDouble(serve_ms, 1)});
  json.AddRow(JsonObject()
                  .Set("section", "serve_mix")
                  .Set("mix", mix_name)
                  .Set("requests", stream.size())
                  .Set("unique_designs", unique)
                  .Set("hits", stats.hits)
                  .Set("misses", stats.cache.misses)
                  .Set("computations", stats.computations)
                  .Set("coalesced", stats.coalesced)
                  .Set("evictions", stats.cache.evictions)
                  .Set("errors", stats.errors)
                  .Set("hit_rate", hit_rate)
                  .Set("responses_digest", outcome.digest)
                  .Set("serve_ms", serve_ms)
                  .Set("p50_ms", Percentile(latencies, 0.50))
                  .Set("p99_ms", Percentile(latencies, 0.99)));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  bool failed = false;
  BenchJsonWriter json("serve");

  std::cout << "=== certification service load: " << opts.requests
            << " requests/mix over " << opts.designs
            << " designs (5 sources), seed " << opts.seed << " ===\n\n";

  const auto t_corpus = std::chrono::steady_clock::now();
  const std::vector<serve::CertRequest> corpus =
      BuildCorpus(opts.designs, opts.seed, 0);
  // Unique-heavy traffic: every request is a first-contact design.
  const std::size_t unique_requests =
      std::max<std::size_t>(8, std::min<std::size_t>(opts.requests / 4, 150));
  const std::vector<serve::CertRequest> unique_stream =
      BuildCorpus(unique_requests, opts.seed, 7777);
  std::cout << "corpus of " << corpus.size() << " + " << unique_stream.size()
            << " designs rendered in "
            << FormatDouble(MillisSince(t_corpus), 1) << " ms\n\n";

  const std::vector<serve::CertRequest> repeat_stream =
      DrawMix(corpus, opts.requests, opts.seed ^ 0x5e11, 0.8);
  const std::vector<serve::CertRequest> uniform_stream =
      DrawMix(corpus, opts.requests, opts.seed ^ 0x7a31, 0.0);

  // ---- serial mixes: exact, machine-independent cache behaviour ----
  TextTable mix_table;
  mix_table.SetHeader({"mix", "requests", "unique", "hits", "misses",
                       "computed", "hit_rate", "serve_ms"});
  const MixOutcome repeat_outcome = RunSerialMix(
      "repeat_heavy", repeat_stream, opts.threads, json, mix_table);
  const MixOutcome uniform_outcome = RunSerialMix(
      "uniform", uniform_stream, opts.threads, json, mix_table);
  const MixOutcome unique_outcome = RunSerialMix(
      "unique_heavy", unique_stream, opts.threads, json, mix_table);
  mix_table.Print(std::cout);
  failed = failed || repeat_outcome.bad != 0 || uniform_outcome.bad != 0 ||
           unique_outcome.bad != 0;

  // ---- eviction: a tiny single-shard cache must respect its bounds ----
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    config.cache.shards = 1;
    config.cache.max_entries = 8;
    serve::CertificationService service(config);
    for (const serve::CertRequest& request : uniform_stream) {
      service.Serve(request);
    }
    const serve::ServiceStats stats = service.Stats();
    const bool entries_ok = stats.cache.entries <= 8;
    const bool bytes_ok = stats.cache.bytes <= config.cache.max_bytes;
    const bool evicted = stats.cache.evictions ==
                         stats.cache.insertions - stats.cache.entries;
    std::string verdict = "BOUNDS VIOLATED";
    if (entries_ok && bytes_ok && evicted) {
      verdict = "bounds OK";
    }
    std::cout << "\neviction: " << stats.cache.insertions << " insertions, "
              << stats.cache.evictions << " evictions, "
              << stats.cache.entries << " resident (" << verdict << ")\n";
    json.AddRow(JsonObject()
                    .Set("section", "serve_eviction")
                    .Set("max_entries", std::size_t{8})
                    .Set("insertions", stats.cache.insertions)
                    .Set("evictions", stats.cache.evictions)
                    .Set("entries", stats.cache.entries)
                    .Set("entries_within_cap", entries_ok)
                    .Set("bytes_within_cap", bytes_ok)
                    .Set("eviction_accounting_exact", evicted));
    failed = failed || !entries_ok || !bytes_ok || !evicted;
  }

  // ---- concurrent coalescing: exactly one computation per design ----
  const std::vector<serve::CertRequest> burst_stream =
      DrawBursts(corpus, opts.requests, opts.seed ^ 0xb00, 8);
  std::uint64_t serial_burst_digest = 0;
  {
    TextTable scratch;
    scratch.SetHeader({});
    BenchJsonWriter scratch_json("serve_scratch");
    const MixOutcome serial =
        RunSerialMix("burst_serial", burst_stream, opts.threads, scratch_json,
                     scratch);
    serial_burst_digest = serial.digest;
    failed = failed || serial.bad != 0;
  }
  {
    serve::ServiceConfig config;
    config.threads = opts.threads;
    serve::CertificationService service(config);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<serve::CertResponse> responses =
        service.ServeBatch(burst_stream, opts.client_threads);
    const double wall_ms = MillisSince(t0);
    const serve::ServiceStats stats = service.Stats();
    const std::size_t unique = UniqueKeys(responses);
    const std::uint64_t digest = serve::ResponseDigest(responses);
    const bool single_flight = stats.computations == unique;
    const bool digest_matches = digest == serial_burst_digest;
    const std::size_t shared = stats.hits + stats.coalesced;
    std::string clients = "pool-width";
    if (opts.client_threads != 0) {
      clients = std::to_string(opts.client_threads);
    }
    std::cout << "\ncoalescing: " << burst_stream.size() << " requests ("
              << unique << " unique) over " << clients
              << " clients: " << stats.computations << " computations, "
              << stats.coalesced << " coalesced, " << stats.hits
              << " hits (saved " << shared << " recomputes) in "
              << FormatDouble(wall_ms, 1) << " ms\n"
              << "  single-flight "
              << (single_flight ? "EXACT" : "VIOLATED (bug!)")
              << ", payloads ";
    if (digest_matches) {
      std::cout << "identical to serial\n";
    } else {
      std::cout << "DIVERGED from serial (bug!)\n";
    }
    json.AddRow(JsonObject()
                    .Set("section", "serve_concurrent")
                    .Set("requests", burst_stream.size())
                    .Set("unique_designs", unique)
                    .Set("computations", stats.computations)
                    .Set("single_flight_exact", single_flight)
                    .Set("digest_matches_serial", digest_matches)
                    .Set("responses_digest", digest)
                    .Set("wall_ms", wall_ms));
    failed = failed || CountBad(responses) != 0 || !single_flight ||
             !digest_matches;
  }

  // ---- determinism: payload digests for any client thread count ----
  bool deterministic = true;
  if (opts.check_determinism) {
    for (const std::size_t clients : {std::size_t{1}, std::size_t{3}}) {
      serve::ServiceConfig config;
      config.threads = opts.threads;
      serve::CertificationService service(config);
      const std::uint64_t digest = serve::ResponseDigest(
          service.ServeBatch(burst_stream, clients));
      const bool match = digest == serial_burst_digest;
      deterministic = deterministic && match;
      std::cout << "determinism check (" << clients << " clients): digest "
                << std::hex << digest << std::dec
                << (match ? " OK" : " MISMATCH (bug!)") << "\n";
    }
    failed = failed || !deterministic;
  }

  // ---- headline: cold recompute vs warm cache-hit serving ----
  double hit_speedup = 0.0;
  if (opts.perf) {
    // Cold: cache and coalescer bypassed, every request recomputes.
    serve::ServiceConfig cold_config;
    cold_config.threads = opts.threads;
    cold_config.cache_enabled = false;
    serve::CertificationService cold_service(cold_config);
    const auto t_cold = std::chrono::steady_clock::now();
    std::vector<serve::CertResponse> cold_responses;
    cold_responses.reserve(repeat_stream.size());
    for (const serve::CertRequest& request : repeat_stream) {
      cold_responses.push_back(cold_service.Serve(request));
    }
    const double cold_ms = MillisSince(t_cold);

    // Warm: every unique design pre-served once (untimed), then the
    // identical stream is served entirely from the cache. Several
    // rounds, so the (microseconds-per-hit) measurement amortizes
    // scheduler noise on shared CI runners; the speedup compares
    // per-request averages.
    constexpr std::size_t kWarmRounds = 5;
    serve::ServiceConfig warm_config;
    warm_config.threads = opts.threads;
    serve::CertificationService warm_service(warm_config);
    for (const serve::CertRequest& request : corpus) {
      warm_service.Serve(request);
    }
    const serve::ServiceStats warm_before = warm_service.Stats();
    const auto t_warm = std::chrono::steady_clock::now();
    std::vector<serve::CertResponse> warm_responses;
    warm_responses.reserve(repeat_stream.size());
    for (std::size_t round = 0; round < kWarmRounds; ++round) {
      warm_responses.clear();
      for (const serve::CertRequest& request : repeat_stream) {
        warm_responses.push_back(warm_service.Serve(request));
      }
    }
    const double warm_ms = MillisSince(t_warm) / kWarmRounds;
    const serve::ServiceStats warm_after = warm_service.Stats();
    const bool all_hits = warm_after.hits - warm_before.hits ==
                          kWarmRounds * repeat_stream.size();
    const bool payloads_match = serve::ResponseDigest(warm_responses) ==
                                serve::ResponseDigest(cold_responses);

    hit_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    std::cout << "\ncold recompute: " << FormatDouble(cold_ms, 1)
              << " ms, warm all-hit: " << FormatDouble(warm_ms, 1)
              << " ms -> cache_hit_speedup "
              << FormatDouble(hit_speedup, 1)
              << "x (gate: >= 10x; baseline-gated by CI)\n"
              << "  warm pass ";
    if (all_hits) {
      std::cout << "served 100% from cache";
    } else {
      std::cout << "MISSED the cache (bug!)";
    }
    std::cout << ", cached payloads ";
    if (payloads_match) {
      std::cout << "bit-identical to recompute\n";
    } else {
      std::cout << "DIVERGED from recompute (bug!)\n";
    }
    json.AddRow(JsonObject()
                    .Set("section", "serve_summary")
                    .Set("requests", repeat_stream.size())
                    .Set("unique_designs", corpus.size())
                    .Set("all_hits_when_warm", all_hits)
                    .Set("cached_equals_recomputed", payloads_match)
                    .Set("cold_ms", cold_ms)
                    .Set("warm_ms", warm_ms)
                    .Set("cache_hit_speedup", hit_speedup));
    failed = failed || !all_hits || !payloads_match || hit_speedup < 10.0;
  }

  // ---- instrumentation overhead: warm hits, tracing off vs on ----
  // Metrics instrumentation is compiled in unconditionally; what the
  // deploy decision needs is the *marginal* cost of attaching a trace
  // sink and tracing every request. Both arms serve the identical
  // all-hit stream; the ratio is gated one-sided (trace_overhead) by
  // tools/bench_compare.py so instrumentation cannot silently grow.
  if (opts.perf) {
    constexpr std::size_t kOverheadRounds = 5;
    const auto warm_hit_ms = [&](obs::TraceSink* sink) {
      serve::ServiceConfig config;
      config.threads = opts.threads;
      config.trace = sink;
      serve::CertificationService service(config);
      for (const serve::CertRequest& request : corpus) {
        service.Serve(request);
      }
      std::vector<serve::CertRequest> stream = repeat_stream;
      if (sink != nullptr) {
        for (std::size_t i = 0; i < stream.size(); ++i) {
          stream[i].trace_id = "q" + std::to_string(i);
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t round = 0; round < kOverheadRounds; ++round) {
        for (const serve::CertRequest& request : stream) {
          service.Serve(request);
        }
      }
      return MillisSince(t0) / kOverheadRounds;
    };
    const double untraced_ms = warm_hit_ms(nullptr);
    obs::TraceSink sink(obs::TraceClockMode::kLogical);
    const double traced_ms = warm_hit_ms(&sink);
    const double overhead = untraced_ms > 0.0 ? traced_ms / untraced_ms : 0.0;
    std::cout << "\ninstrumentation overhead: warm pass "
              << FormatDouble(untraced_ms, 2) << " ms untraced vs "
              << FormatDouble(traced_ms, 2) << " ms traced ("
              << sink.TraceCount() << " traces) -> trace_overhead "
              << FormatDouble(overhead, 2)
              << "x (one-sided baseline gate in CI)\n";
    json.AddRow(JsonObject()
                    .Set("section", "obs_overhead")
                    .Set("requests", repeat_stream.size())
                    .Set("untraced_ms", untraced_ms)
                    .Set("traced_ms", traced_ms)
                    .Set("trace_overhead", overhead));
  }

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return failed ? 1 : 0;
}
