// Differential validation campaign: certificates vs. cycle-accurate
// simulation at scale.
//
// Fans randomized end-to-end trials over the thread pool (see
// src/valid/campaign.h for the four-way contract), prints per-arm
// summaries, dumps replayable repros for any mismatch, and appends
// machine-readable rows to BENCH_validation_campaign.json:
//   * one row per trial (section "trial"),
//   * per-arm aggregates (section "arm_summary"),
//   * the campaign summary with its determinism digest ("campaign"),
//   * the simulator engine speedup on the campaign's largest design
//     ("sim_engine_speedup"), both the dense campaign workload and a
//     light steady-state workload.
//
// Flags:
//   --trials N       total trial rows (default 400)
//   --seed S         base seed (default 1)
//   --threads T      worker threads, 0 = hardware (default 0)
//   --arms a,b,c     comma list of untreated|removal_incremental|
//                    removal_rebuild|resource_ordering|updown
//                    (default: all)
//   --sources a,b,c  comma list of design sources synthesized|mesh|
//                    torus|ring|fat_tree (default: all)
//   --engines a,b,c  comma list of worklist|fullscan|event. Two or more
//                    turn every trial into an engine-differential test:
//                    the first engine is the primary, the rest are
//                    re-classified and cross-checked field-for-field
//                    (any disagreement is an engine_divergence
//                    mismatch). One engine just selects it.
//   --no-shrink      skip minimizing mismatches
//   --no-perf        skip the simulator speedup measurement
//   --check-determinism  rerun at 1 and 3 threads, require equal digests
//   --replay FILE    replay a dumped repro instead of running a campaign
//
// Exit code: 0 iff the campaign had no contract mismatch (and, with
// --check-determinism, all digests matched); --replay exits 0 iff the
// repro still reproduces its mismatch.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "deadlock/removal.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/table.h"
#include "valid/campaign.h"
#include "valid/repro.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct Options {
  valid::CampaignConfig campaign;
  bool perf = true;
  bool check_determinism = false;
  std::string replay_path;
};

Options ParseOptions(int argc, char** argv) {
  Options opts;
  bench::FlagParser flags("bench_validation_campaign");
  std::string arms_csv;
  std::string sources_csv;
  std::string engines_csv;
  bool arms_given = false;
  bool sources_given = false;
  bool engines_given = false;
  bool no_shrink = false;
  bool no_perf = false;
  flags.AddSize("--trials", &opts.campaign.trials);
  flags.AddUint64("--seed", &opts.campaign.base_seed);
  flags.AddSize("--threads", &opts.campaign.threads);
  flags.AddString("--arms", &arms_csv, &arms_given);
  flags.AddString("--sources", &sources_csv, &sources_given);
  flags.AddString("--engines", &engines_csv, &engines_given);
  flags.AddSwitch("--no-shrink", &no_shrink);
  flags.AddSwitch("--no-perf", &no_perf);
  flags.AddSwitch("--check-determinism", &opts.check_determinism);
  flags.AddString("--replay", &opts.replay_path);
  flags.Parse(argc, argv);
  opts.campaign.shrink = !no_shrink;
  opts.perf = !no_perf;
  if (arms_given) {
    opts.campaign.arms.clear();
    for (const std::string& name : bench::SplitCsv(arms_csv)) {
      const auto arm = valid::ParseArm(name);
      if (!arm.has_value()) {
        flags.Fail("unknown arm \"" + name + "\"");
      }
      opts.campaign.arms.push_back(*arm);
    }
    if (opts.campaign.arms.empty()) {
      flags.Fail("--arms needs at least one arm");
    }
  }
  if (sources_given) {
    opts.campaign.sources.clear();
    for (const std::string& name : bench::SplitCsv(sources_csv)) {
      const auto source = valid::ParseSource(name);
      if (!source.has_value()) {
        flags.Fail("unknown design source \"" + name + "\"");
      }
      opts.campaign.sources.push_back(*source);
    }
    if (opts.campaign.sources.empty()) {
      flags.Fail("--sources needs at least one source");
    }
  }
  if (engines_given) {
    for (const std::string& name : bench::SplitCsv(engines_csv)) {
      const auto engine = ParseEngine(name);
      if (!engine.has_value()) {
        flags.Fail("unknown engine \"" + name + "\"");
      }
      opts.campaign.engines.push_back(*engine);
    }
    if (opts.campaign.engines.empty()) {
      flags.Fail("--engines needs at least one engine");
    }
  }
  return opts;
}

int Replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  valid::Repro repro;
  try {
    repro = valid::ReproFromJson(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << path << " is not a valid repro dump: " << e.what() << "\n";
    return 2;
  }
  std::cout << "replaying trial " << repro.trial_index << " ("
            << valid::ArmName(repro.arm) << ", seed " << repro.seed
            << ", design " << repro.design.name << " with "
            << repro.design.traffic.FlowCount() << " flows)\n"
            << "recorded mismatch: " << repro.mismatch << "\n";
  if (!repro.io_stable) {
    std::cout << "note: the original design was not io-stable (channel "
                 "numbering changed in the dump); the replay may "
                 "legitimately come back clean\n";
  }
  const valid::ReplayResult replay = valid::ReplayRepro(repro);
  if (replay.reproduced) {
    std::cout << "REPRODUCED: " << replay.row.mismatch << "\n";
    return 0;
  }
  std::cout << "did not reproduce (verdict is clean now)\n";
  return 1;
}

/// Best-of-3 wall clock of one simulation.
double TimeSim(const NocDesign& design, const SimConfig& config) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult result = SimulateWorkload(design, config);
    const double ms = MillisSince(t0);
    (void)result;
    if (rep == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

/// Measures the worklist and event engines against the full-scan
/// reference on the campaign's largest design, under the dense campaign
/// workload and a light steady-state workload. Returns the best
/// worklist speedup of the two — the optimized engines exist for sparse
/// activity, where the full scan burns a whole channel sweep per cycle
/// to move a handful of flits and the event engine additionally skips
/// idle cycles outright (its headline ≥10x gate runs on the far larger
/// designs of bench_sim_latency_curve; here the rows are informational).
double MeasureSimSpeedup(const valid::CampaignConfig& config,
                         const std::vector<valid::TrialRow>& rows,
                         BenchJsonWriter& json) {
  std::uint64_t largest_seed = 0;
  std::size_t largest_channels = 0;
  valid::DesignSource largest_source = valid::DesignSource::kSynthesized;
  for (const valid::TrialRow& row : rows) {
    if (row.channels_before > largest_channels) {
      largest_channels = row.channels_before;
      largest_seed = row.design_seed;
      largest_source = row.source;
    }
  }
  NocDesign design = valid::GenerateTrialDesign(largest_source, largest_seed,
                                                config.envelope);
  RemoveDeadlocks(design);

  SimConfig dense;
  dense.buffer_depth = config.workload.buffer_depth;
  dense.max_cycles = config.workload.max_cycles;
  dense.traffic.mode = InjectionMode::kFixedCount;
  dense.traffic.packets_per_flow = config.workload.packets_per_flow * 16;
  dense.traffic.packet_length = config.workload.packet_length;

  SimConfig light;
  light.buffer_depth = 2;
  light.max_cycles = 100000;
  light.traffic.mode = InjectionMode::kBernoulli;
  light.traffic.reference_injection_rate = 0.005;
  light.traffic.packet_length = 5;
  light.traffic.seed = largest_seed;

  double best_speedup = 0.0;
  TextTable table;
  table.SetHeader({"workload", "fullscan (ms)", "worklist (ms)",
                   "event (ms)", "worklist speedup", "event speedup"});
  for (const auto& [label, base] :
       {std::pair<std::string, SimConfig*>{"dense_fixed_count", &dense},
        {"light_bernoulli", &light}}) {
    SimConfig cfg = *base;
    cfg.engine = SimEngine::kFullScan;
    const double full_ms = TimeSim(design, cfg);
    cfg.engine = SimEngine::kWorklist;
    const double work_ms = TimeSim(design, cfg);
    cfg.engine = SimEngine::kEvent;
    const double event_ms = TimeSim(design, cfg);
    const double speedup = work_ms > 0.0 ? full_ms / work_ms : 0.0;
    // Same definition as bench_sim_latency_curve: the event engine
    // against the worklist incumbent (its ≥10x gate lives there, on the
    // far larger mesh ladder; these rows just track the campaign shape).
    const double event_speedup = event_ms > 0.0 ? work_ms / event_ms : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    table.AddRow({label, FormatDouble(full_ms, 2), FormatDouble(work_ms, 2),
                  FormatDouble(event_ms, 2), FormatDouble(speedup, 2) + "x",
                  FormatDouble(event_speedup, 2) + "x"});
    json.AddRow(JsonObject()
                    .Set("section", "sim_engine_speedup")
                    .Set("design", design.name)
                    .Set("channels", design.topology.ChannelCount())
                    .Set("flows", design.traffic.FlowCount())
                    .Set("workload", label)
                    .Set("fullscan_ms", full_ms)
                    .Set("worklist_ms", work_ms)
                    .Set("event_ms", event_ms)
                    .Set("speedup", speedup)
                    .Set("event_engine_speedup", event_speedup));
  }
  std::cout << "\n=== simulator engine speedup on largest design ("
            << design.name << ", " << design.topology.ChannelCount()
            << " channels, " << design.traffic.FlowCount() << " flows) ===\n";
  table.Print(std::cout);
  std::cout << "best speedup " << FormatDouble(best_speedup, 2)
            << "x (target >= 1.5x)\n";
  return best_speedup;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = ParseOptions(argc, argv);
  if (!opts.replay_path.empty()) {
    return Replay(opts.replay_path);
  }

  std::cout << "=== validation campaign: " << opts.campaign.trials
            << " trials, seed " << opts.campaign.base_seed << ", "
            << opts.campaign.arms.size() << " arms, "
            << opts.campaign.sources.size() << " design sources";
  if (opts.campaign.engines.size() > 1) {
    std::cout << ", engine differential";
    for (const SimEngine engine : opts.campaign.engines) {
      std::cout << " " << EngineName(engine);
    }
  }
  std::cout << " ===\n\n";
  const auto t0 = std::chrono::steady_clock::now();
  const valid::CampaignResult result = valid::RunCampaign(opts.campaign);
  const double campaign_ms = MillisSince(t0);

  BenchJsonWriter json("validation_campaign");
  for (const valid::TrialRow& row : result.rows) {
    json.AddRow(valid::RowToJson(row).Set("section", "trial"));
  }

  // Per-arm and per-source aggregates.
  struct Aggregate {
    std::size_t trials = 0, positive = 0, detonated = 0, infeasible = 0,
                mismatch = 0, escalated = 0, extra_vcs = 0;

    void Absorb(const valid::TrialRow& row) {
      ++trials;
      positive += row.verdict == valid::TrialVerdict::kPositiveDelivered;
      detonated += row.verdict == valid::TrialVerdict::kNegativeDetonated;
      infeasible += row.verdict == valid::TrialVerdict::kArmInfeasible;
      mismatch += row.verdict == valid::TrialVerdict::kMismatch;
      escalated += row.escalations > 0;
      // Rows whose treatment threw never set channels_after; skip them
      // instead of underflowing.
      if (row.channels_after >= row.channels_before) {
        extra_vcs += row.channels_after - row.channels_before;
      }
    }
  };
  const auto print_group =
      [&](const std::string& key, const std::vector<std::string>& names,
          const auto& selector) {
        TextTable table;
        table.SetHeader({key, "trials", "positive", "detonated",
                         "infeasible", "mismatch", "escalated",
                         "extra_vcs"});
        for (const std::string& name : names) {
          Aggregate agg;
          for (const valid::TrialRow& row : result.rows) {
            if (selector(row) == name) {
              agg.Absorb(row);
            }
          }
          table.AddRow({name, std::to_string(agg.trials),
                        std::to_string(agg.positive),
                        std::to_string(agg.detonated),
                        std::to_string(agg.infeasible),
                        std::to_string(agg.mismatch),
                        std::to_string(agg.escalated),
                        std::to_string(agg.extra_vcs)});
          json.AddRow(JsonObject()
                          .Set("section", key + "_summary")
                          .Set(key, name)
                          .Set("trials", agg.trials)
                          .Set("positive", agg.positive)
                          .Set("detonated", agg.detonated)
                          .Set("infeasible", agg.infeasible)
                          .Set("mismatch", agg.mismatch)
                          .Set("escalated", agg.escalated)
                          .Set("extra_vcs", agg.extra_vcs));
        }
        table.Print(std::cout);
        std::cout << "\n";
      };
  std::vector<std::string> arm_names, source_names;
  for (const valid::TrialArm arm : opts.campaign.arms) {
    arm_names.push_back(valid::ArmName(arm));
  }
  for (const valid::DesignSource source : opts.campaign.sources) {
    source_names.push_back(valid::SourceName(source));
  }
  print_group("arm", arm_names, [](const valid::TrialRow& row) {
    return valid::ArmName(row.arm);
  });
  print_group("source", source_names, [](const valid::TrialRow& row) {
    return valid::SourceName(row.source);
  });
  std::cout << result.rows.size() << " trials in "
            << FormatDouble(campaign_ms, 1) << " ms: " << result.positives
            << " positive, " << result.detonations << " detonated, "
            << result.infeasibles << " infeasible, " << result.mismatches
            << " mismatches; digest " << std::hex << result.digest
            << std::dec << "\n";

  // Replayable repro dumps for every mismatch.
  for (const auto& [trial, repro_json] : result.repros) {
    const std::string path = "repro_trial" + std::to_string(trial) + ".json";
    std::ofstream out(path);
    out << repro_json << "\n";
    std::cout << "mismatch repro written to " << path << "\n";
  }
  for (const valid::TrialRow& row : result.rows) {
    if (row.verdict == valid::TrialVerdict::kMismatch) {
      std::cout << "MISMATCH trial " << row.trial_index << " ("
                << valid::ArmName(row.arm) << ", design seed "
                << row.design_seed << "): " << row.mismatch << "\n";
    }
  }

  // Thread-count determinism: the digest must not depend on scheduling.
  bool deterministic = true;
  if (opts.check_determinism) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      valid::CampaignConfig alt = opts.campaign;
      alt.threads = threads;
      const valid::CampaignResult rerun = valid::RunCampaign(alt);
      const bool match = rerun.digest == result.digest;
      deterministic = deterministic && match;
      std::cout << "determinism check (" << threads << " threads): digest "
                << std::hex << rerun.digest << std::dec
                << (match ? " OK" : " MISMATCH (bug!)") << "\n";
    }
  }

  double speedup = 0.0;
  if (opts.perf) {
    speedup = MeasureSimSpeedup(opts.campaign, result.rows, json);
  }

  json.AddRow(JsonObject()
                  .Set("section", "campaign")
                  .Set("trials", result.rows.size())
                  .Set("base_seed", opts.campaign.base_seed)
                  .Set("arms", opts.campaign.arms.size())
                  .Set("sources", opts.campaign.sources.size())
                  .Set("positives", result.positives)
                  .Set("detonations", result.detonations)
                  .Set("infeasibles", result.infeasibles)
                  .Set("mismatches", result.mismatches)
                  .Set("digest", result.digest)
                  .Set("deterministic", deterministic)
                  .Set("campaign_ms", campaign_ms)
                  .Set("largest_design_speedup", speedup));
  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return (result.mismatches != 0 || !deterministic) ? 1 : 0;
}
