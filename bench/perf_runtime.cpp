// Experiment E7 — algorithm runtime ("the method runs within minutes
// even for the largest benchmark"; on modern hardware it should be
// milliseconds).
//
// Two measurements:
//   1. Engine latency: RemoveDeadlocks with the incremental CDG engine
//      versus the rebuild-per-iteration baseline on identical inputs,
//      largest design last. The engines must produce identical reports;
//      the incremental one is expected to be >= 3x faster on the largest
//      design.
//   2. Sweep throughput: the same job set through SweepRunner with one
//      thread and with all hardware threads; the deterministic digests
//      must match exactly, the wall-clock should not.
// Rows are appended to BENCH_perf_runtime.json for cross-PR tracking.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "runner/sweep.h"
#include "soc/synthetic.h"
#include "test_support_designs.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

namespace {

using bench::MillisSince;

struct TimedRun {
  double best_ms = 0.0;
  RemovalReport report;
};

/// Best-of-N timing of RemoveDeadlocks on copies of \p base; repeats
/// until ~200ms of samples or 5 reps, whichever first.
TimedRun TimeRemoval(const NocDesign& base, RemovalEngine engine) {
  TimedRun result;
  RemovalOptions options;
  options.engine = engine;
  double total = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    NocDesign design = base;  // copy outside the timed region
    const auto t0 = std::chrono::steady_clock::now();
    RemovalReport report = RemoveDeadlocks(design, options);
    const double ms = MillisSince(t0);
    if (rep == 0 || ms < result.best_ms) {
      result.best_ms = ms;
    }
    result.report = std::move(report);
    total += ms;
    if (total > 200.0) {
      break;
    }
  }
  return result;
}

struct PerfDesign {
  std::string name;
  NocDesign design;
};

std::vector<PerfDesign> MakePerfDesigns() {
  std::vector<PerfDesign> designs;
  designs.push_back({"ring32x3", bench::MakeRing(32, 3)});
  designs.push_back({"ring64x4", bench::MakeRing(64, 4)});
  for (std::size_t switches : {14u, 24u, 34u}) {
    const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
    designs.push_back({"D36_8@" + std::to_string(switches),
                       SynthesizeDesign(b.traffic, b.name, switches)});
  }
  // Largest: a synthetic SoC an order of magnitude past the paper's suite.
  SyntheticSocSpec spec;
  spec.cores = 288;
  spec.fanout = 4;
  spec.hubs = 288 / 24;
  const auto big = MakeSyntheticSoc(spec);
  designs.push_back({"S288_f4", SynthesizeDesign(big.traffic, big.name,
                                                 288 / 3)});
  return designs;
}

}  // namespace

int main() {
  std::cout << "=== E7: removal-engine latency, incremental vs "
               "rebuild-per-iteration ===\n\n";
  BenchJsonWriter json("perf_runtime");

  const std::vector<PerfDesign> designs = MakePerfDesigns();
  TextTable table;
  table.SetHeader({"design", "iters", "VCs", "rebuild (ms)",
                   "incremental (ms)", "speedup", "BFS runs"});
  bool mismatch = false;
  double largest_speedup = 0.0;
  for (const PerfDesign& pd : designs) {
    const TimedRun rebuild = TimeRemoval(pd.design, RemovalEngine::kRebuild);
    const TimedRun incremental =
        TimeRemoval(pd.design, RemovalEngine::kIncremental);
    if (rebuild.report.iterations != incremental.report.iterations ||
        rebuild.report.vcs_added != incremental.report.vcs_added ||
        rebuild.report.flows_rerouted != incremental.report.flows_rerouted) {
      std::cout << "ENGINE MISMATCH on " << pd.name << ": rebuild "
                << Summarize(rebuild.report) << " vs incremental "
                << Summarize(incremental.report) << "\n";
      mismatch = true;
    }
    const double speedup =
        incremental.best_ms > 0.0 ? rebuild.best_ms / incremental.best_ms
                                  : 0.0;
    largest_speedup = speedup;  // designs end with the largest
    table.AddRow({pd.name, std::to_string(incremental.report.iterations),
                  std::to_string(incremental.report.vcs_added),
                  FormatDouble(rebuild.best_ms, 2),
                  FormatDouble(incremental.best_ms, 2),
                  FormatDouble(speedup, 1) + "x",
                  std::to_string(incremental.report.cycle_bfs_runs)});
    json.AddRow(JsonObject()
                    .Set("section", "engine_latency")
                    .Set("design", pd.name)
                    .Set("iterations", incremental.report.iterations)
                    .Set("vcs_added", incremental.report.vcs_added)
                    .Set("rebuild_ms", rebuild.best_ms)
                    .Set("incremental_ms", incremental.best_ms)
                    .Set("speedup", speedup)
                    .Set("cycle_bfs_runs",
                         incremental.report.cycle_bfs_runs));
  }
  table.Print(std::cout);
  std::cout << "\nSpeedup on largest design (" << designs.back().name
            << "): " << FormatDouble(largest_speedup, 1)
            << "x (target >= 3x)\n";

  // ---------------------------------------------------------------------
  std::cout << "\n=== SweepRunner: thread-count determinism + throughput "
               "===\n\n";
  std::vector<runner::SweepJob> jobs;
  for (const PerfDesign& pd : designs) {
    for (const auto& [engine, label] :
         {std::pair{RemovalEngine::kIncremental, "incremental"},
          std::pair{RemovalEngine::kRebuild, "rebuild"}}) {
      runner::SweepJob job;
      job.design = pd.name;
      job.variant = label;
      job.options.engine = engine;
      job.factory = [&design = pd.design](Rng&) { return design; };
      jobs.push_back(std::move(job));
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  const auto serial = runner::SweepRunner({.threads = 1}).Run(jobs);
  const double serial_ms = MillisSince(t0);
  t0 = std::chrono::steady_clock::now();
  const auto parallel = runner::SweepRunner({.threads = 0}).Run(jobs);
  const double parallel_ms = MillisSince(t0);

  const std::uint64_t serial_digest = runner::Digest(serial);
  const std::uint64_t parallel_digest = runner::Digest(parallel);
  const bool deterministic = serial_digest == parallel_digest;
  std::cout << jobs.size() << " jobs: 1 thread " << FormatDouble(serial_ms, 1)
            << " ms, all threads " << FormatDouble(parallel_ms, 1)
            << " ms (" << FormatDouble(serial_ms / parallel_ms, 1)
            << "x), digests "
            << (deterministic ? "IDENTICAL" : "MISMATCH (bug!)") << "\n";
  json.AddRow(JsonObject()
                  .Set("section", "sweep_throughput")
                  .Set("jobs", jobs.size())
                  .Set("serial_ms", serial_ms)
                  .Set("parallel_ms", parallel_ms)
                  .Set("digest_match", deterministic)
                  .Set("largest_design_speedup", largest_speedup));

  const std::string path = json.Write();
  if (!path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return (mismatch || !deterministic) ? 1 : 0;
}
