// Experiment E7 — algorithm runtime ("the method runs within minutes
// even for the largest benchmark"; on modern hardware it should be
// milliseconds). google-benchmark timings for the full removal pipeline
// and its pieces across problem sizes.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cdg/cdg.h"
#include "cdg/cycle.h"
#include "test_support_designs.h"

using namespace nocdr;

namespace {

void BM_CdgBuild(benchmark::State& state) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto design = SynthesizeDesign(
      b.traffic, b.name, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChannelDependencyGraph::Build(design));
  }
}
BENCHMARK(BM_CdgBuild)->Arg(10)->Arg(20)->Arg(30);

void BM_SmallestCycle(benchmark::State& state) {
  const auto design =
      bench::MakeRing(static_cast<std::size_t>(state.range(0)), 3);
  const auto cdg = ChannelDependencyGraph::Build(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmallestCycle(cdg));
  }
}
BENCHMARK(BM_SmallestCycle)->Arg(8)->Arg(32)->Arg(128);

void BM_RemoveDeadlocks_Ring(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto design =
        bench::MakeRing(static_cast<std::size_t>(state.range(0)), 3);
    state.ResumeTiming();
    const auto report = RemoveDeadlocks(design);
    benchmark::DoNotOptimize(report.vcs_added);
  }
}
BENCHMARK(BM_RemoveDeadlocks_Ring)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RemoveDeadlocks_D36_8(benchmark::State& state) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto base = SynthesizeDesign(
      b.traffic, b.name, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    auto design = base;
    state.ResumeTiming();
    const auto report = RemoveDeadlocks(design);
    benchmark::DoNotOptimize(report.vcs_added);
  }
}
BENCHMARK(BM_RemoveDeadlocks_D36_8)->Arg(14)->Arg(24)->Arg(34);

void BM_ResourceOrdering_D36_8(benchmark::State& state) {
  const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
  const auto base = SynthesizeDesign(
      b.traffic, b.name, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    auto design = base;
    state.ResumeTiming();
    const auto report = ApplyResourceOrdering(design);
    benchmark::DoNotOptimize(report.vcs_added);
  }
}
BENCHMARK(BM_ResourceOrdering_D36_8)->Arg(14)->Arg(24)->Arg(34);

void BM_FullPipeline_Largest(benchmark::State& state) {
  // Synthesis + removal on the largest benchmark (D38_tvo).
  const auto b = MakeBenchmark(SocBenchmarkId::kD38Tvo);
  for (auto _ : state) {
    auto design = SynthesizeDesign(b.traffic, b.name, 14);
    const auto report = RemoveDeadlocks(design);
    benchmark::DoNotOptimize(report.vcs_added);
  }
}
BENCHMARK(BM_FullPipeline_Largest);

}  // namespace

BENCHMARK_MAIN();
