// Extension experiment A3 — turn prohibition (up*/down*) vs. the
// paper's removal algorithm.
//
// The paper argues ([17], [18] discussion) that turn-prohibition methods
// (a) require bidirectional links and (b) constrain routes. This harness
// quantifies both on synthesized designs: feasibility on the default
// (partially unidirectional) topologies, and — on tree-only topologies
// where up*/down* is always feasible — the hop inflation and dynamic
// power it costs, against the removal algorithm's VC cost.
#include <iostream>

#include "bench_common.h"
#include "deadlock/updown.h"
#include "test_support_designs.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== A3: turn prohibition (up*/down*) vs deadlock removal "
               "===\n\n";

  std::cout << "-- Feasibility: unidirectional custom topologies vs "
               "synthesized ones --\n";
  TextTable feas;
  feas.SetHeader({"design", "up*/down*", "removal alg."});
  int infeasible = 0, total = 0;
  // Unidirectional rings: the link-constrained custom designs the paper
  // cites ([21]) as the reason turn prohibition cannot be assumed.
  for (std::size_t n : {4u, 6u, 8u}) {
    auto ud_design = bench::MakeRing(n, 2);
    auto rm_design = ud_design;
    std::string verdict = "feasible";
    try {
      ApplyUpDownRouting(ud_design);
    } catch (const TurnProhibitionInfeasibleError&) {
      verdict = "INFEASIBLE (unidirectional links)";
      ++infeasible;
    }
    RemoveDeadlocks(rm_design);
    feas.AddRow({rm_design.name, verdict, "feasible (always)"});
    ++total;
  }
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    auto ud_design = SynthesizeDesign(b.traffic, b.name, 14);
    std::string verdict = "feasible";
    try {
      ApplyUpDownRouting(ud_design);
    } catch (const TurnProhibitionInfeasibleError&) {
      verdict = "INFEASIBLE (unidirectional links)";
      ++infeasible;
    }
    feas.AddRow({ud_design.name, verdict, "feasible (always)"});
    ++total;
  }
  feas.Print(std::cout);
  std::cout << "up*/down* infeasible on " << infeasible << "/" << total
            << " designs — the bidirectional-link requirement the paper "
               "criticizes; the removal algorithm never refuses.\n\n";

  std::cout << "-- Cost where both run: default synthesized topologies "
               "(shortcut links present) --\n";
  TextTable cost;
  cost.SetHeader({"design", "removal VCs", "updown VCs", "updown hop infl.",
                  "removal power mW", "updown power mW", "power penalty"});
  double penalty_sum = 0.0;
  int penalty_points = 0;
  for (auto id : AllBenchmarkIds()) {
    const auto b = MakeBenchmark(id);
    const auto base = SynthesizeDesign(b.traffic, b.name, 14);
    auto rm_design = base;
    auto ud_design = base;
    const auto rm_report = RemoveDeadlocks(rm_design);
    const auto ud_report = ApplyUpDownRouting(ud_design);
    const auto rm_power = EstimatePowerArea(rm_design).TotalPowerMw();
    const auto ud_power = EstimatePowerArea(ud_design).TotalPowerMw();
    const double penalty = 100.0 * (ud_power / rm_power - 1.0);
    cost.AddRow({base.name, std::to_string(rm_report.vcs_added), "0",
                 FormatDouble(ud_report.HopInflation(), 3),
                 FormatDouble(rm_power, 1), FormatDouble(ud_power, 1),
                 FormatDouble(penalty, 1) + "%"});
    penalty_sum += penalty;
    ++penalty_points;
  }
  cost.Print(std::cout);
  std::cout << "\nMean up*/down* power penalty vs removal: "
            << FormatDouble(penalty_sum / penalty_points, 1)
            << "% — turn prohibition spends no VCs but funnels traffic "
               "through the tree, lengthening routes;\nthe removal "
               "algorithm keeps every flow on its load-balanced shortest "
               "path and pays only the few VCs the CDG demands.\n";
  return 0;
}
