// Deadlock-prone design corpus shared by the ablation harnesses.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "noc/design.h"
#include "soc/benchmarks.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace nocdr::bench {

/// A named design factory (factories, so each ablation arm gets a fresh
/// copy to mutate).
using DesignFactory = std::function<NocDesign()>;

/// Unidirectional ring with flows spanning `span` hops — always cyclic.
inline NocDesign MakeRing(std::size_t n, std::size_t span) {
  NocDesign d;
  d.name = "ring" + std::to_string(n) + "x" + std::to_string(span);
  std::vector<SwitchId> sw;
  for (std::size_t i = 0; i < n; ++i) {
    sw.push_back(d.topology.AddSwitch());
  }
  std::vector<ChannelId> ring;
  for (std::size_t i = 0; i < n; ++i) {
    ring.push_back(*d.topology.FindChannel(
        d.topology.AddLink(sw[i], sw[(i + 1) % n]), 0));
  }
  std::vector<CoreId> cores;
  for (std::size_t i = 0; i < n; ++i) {
    cores.push_back(d.traffic.AddCore());
    d.attachment.push_back(sw[i]);
  }
  d.routes.Resize(0);
  for (std::size_t i = 0; i < n; ++i) {
    d.traffic.AddFlow(cores[i], cores[(i + span) % n], 60.0);
  }
  d.routes.Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Route r;
    for (std::size_t h = 0; h < span; ++h) {
      r.push_back(ring[(i + h) % n]);
    }
    d.routes.SetRoute(FlowId(i), r);
  }
  d.Validate();
  return d;
}

/// The corpus: rings of several shapes plus the synthesized dense-traffic
/// designs that exhibit CDG cycles.
inline std::vector<std::pair<std::string, DesignFactory>>
DeadlockProneDesigns() {
  std::vector<std::pair<std::string, DesignFactory>> corpus;
  for (auto [n, span] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {6, 2}, {6, 3}, {8, 3}, {10, 4}, {12, 5}}) {
    corpus.emplace_back(
        "ring" + std::to_string(n) + "x" + std::to_string(span),
        [n = n, span = span] { return MakeRing(n, span); });
  }
  for (std::size_t switches : {12u, 16u, 20u}) {
    corpus.emplace_back(
        "D36_8@" + std::to_string(switches),
        [switches] {
          const auto b = MakeBenchmark(SocBenchmarkId::kD36_8);
          return SynthesizeDesign(b.traffic, b.name, switches);
        });
  }
  return corpus;
}

}  // namespace nocdr::bench
