// Ablation A2 — bidirectional break-cost search.
//
// Algorithm 1 evaluates both the forward and the backward break for each
// cycle and applies the cheaper (steps 5-11). This harness quantifies
// what that buys over committing to a single direction.
#include <iostream>

#include "bench_common.h"
#include "test_support_designs.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== A2: break-direction policy ablation ===\n\n";
  TextTable table;
  table.SetHeader({"design", "both: VCs", "forward-only: VCs",
                   "backward-only: VCs"});

  std::size_t total[3] = {0, 0, 0};
  const DirectionPolicy policies[3] = {DirectionPolicy::kBoth,
                                       DirectionPolicy::kForwardOnly,
                                       DirectionPolicy::kBackwardOnly};
  for (const auto& [name, make] : bench::DeadlockProneDesigns()) {
    std::vector<std::string> row = {name};
    for (int pi = 0; pi < 3; ++pi) {
      NocDesign d = make();
      RemovalOptions options;
      options.direction_policy = policies[pi];
      const auto report = RemoveDeadlocks(d, options);
      row.push_back(std::to_string(report.vcs_added));
      total[pi] += report.vcs_added;
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nTotal VCs added: both " << total[0] << ", forward-only "
            << total[1] << ", backward-only " << total[2] << "\n";
  return 0;
}
