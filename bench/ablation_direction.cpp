// Ablation A2 — bidirectional break-cost search.
//
// Algorithm 1 evaluates both the forward and the backward break for each
// cycle and applies the cheaper (steps 5-11). This harness quantifies
// what that buys over committing to a single direction — one SweepRunner
// batch, one job per (design, direction policy). Rows land in
// BENCH_ablation_direction.json.
#include <iostream>

#include "bench_common.h"
#include "util/json.h"
#include "util/table.h"

using namespace nocdr;

int main() {
  std::cout << "=== A2: break-direction policy ablation ===\n\n";

  std::vector<bench::AblationArm> arms(3);
  arms[0].label = "both";
  arms[0].options.direction_policy = DirectionPolicy::kBoth;
  arms[1].label = "forward";
  arms[1].options.direction_policy = DirectionPolicy::kForwardOnly;
  arms[2].label = "backward";
  arms[2].options.direction_policy = DirectionPolicy::kBackwardOnly;

  const auto corpus = bench::DeadlockProneDesigns();
  const auto rows = bench::RunCorpusSweep(corpus, arms);

  TextTable table;
  table.SetHeader(
      {"design", "both: VCs", "forward-only: VCs", "backward-only: VCs"});
  BenchJsonWriter json("ablation_direction");
  std::size_t total[3] = {0, 0, 0};
  for (std::size_t d = 0; d < corpus.size(); ++d) {
    std::vector<std::string> cells = {corpus[d].first};
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const runner::SweepRow& row = rows[arms.size() * d + a];
      if (bench::RowFailed(row)) {
        return 1;
      }
      cells.push_back(std::to_string(row.vcs_added));
      total[a] += row.vcs_added;
      json.AddRow(runner::RowToJson(row));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
  std::cout << "\nTotal VCs added: both " << total[0] << ", forward-only "
            << total[1] << ", backward-only " << total[2] << "\n";
  if (const std::string path = json.Write(); !path.empty()) {
    std::cout << "rows written to " << path << "\n";
  }
  return 0;
}
